"""Sink trajectory: slots, anchors, gamma, availability windows."""

import numpy as np
import pytest

from repro.network.geometry import LinearPath
from repro.network.path import SinkTrajectory
from repro.utils.intervals import SlotInterval


@pytest.fixture
def traj():
    # 1000 m path, 5 m/s, 1 s slots -> 200 slots of 5 m.
    return SinkTrajectory(LinearPath(1000.0), speed=5.0, slot_duration=1.0)


def test_num_slots(traj):
    assert traj.num_slots == 200


def test_num_slots_floor():
    t = SinkTrajectory(LinearPath(1001.0), speed=5.0, slot_duration=1.0)
    assert t.num_slots == 200  # floor(1001/5)


def test_tour_duration(traj):
    assert traj.tour_duration == pytest.approx(200.0)


def test_slot_length(traj):
    assert traj.slot_length_m == pytest.approx(5.0)


def test_zero_slot_tour_rejected():
    with pytest.raises(ValueError):
        SinkTrajectory(LinearPath(3.0), speed=5.0, slot_duration=1.0)


def test_invalid_anchor():
    with pytest.raises(ValueError):
        SinkTrajectory(LinearPath(100.0), 5.0, 1.0, anchor="middle")


def test_midpoint_anchor(traj):
    assert traj.arc_at_slot(0) == pytest.approx(2.5)
    assert traj.arc_at_slot(10) == pytest.approx(52.5)


def test_start_anchor():
    t = SinkTrajectory(LinearPath(1000.0), 5.0, 1.0, anchor="start")
    assert t.arc_at_slot(3) == pytest.approx(15.0)


def test_end_anchor():
    t = SinkTrajectory(LinearPath(1000.0), 5.0, 1.0, anchor="end")
    assert t.arc_at_slot(3) == pytest.approx(20.0)


def test_position_at_slot(traj):
    np.testing.assert_allclose(traj.position_at_slot(0), [2.5, 0.0])


def test_distances_to(traj):
    xy = np.array([2.5, 4.0])
    d = traj.distances_to(xy, np.array([0]))
    assert d[0] == pytest.approx(4.0)


def test_gamma_paper_defaults():
    # R=200, r_s=5, tau=1 -> Gamma = 40.
    t = SinkTrajectory(LinearPath(10_000.0), 5.0, 1.0)
    assert t.gamma(200.0) == 40


def test_gamma_floor():
    t = SinkTrajectory(LinearPath(10_000.0), 30.0, 4.0)  # slot = 120 m
    assert t.gamma(200.0) == 1  # floor(200/120)


def test_gamma_minimum_one():
    t = SinkTrajectory(LinearPath(10_000.0), 100.0, 4.0)  # slot = 400 m > R
    assert t.gamma(200.0) == 1


def test_availability_centered_sensor(traj):
    # Sensor on the axis at x=500 with R=50: window arcs [450, 550],
    # anchors (j+0.5)*5 in that range -> slots 90..109.
    windows = traj.availability(np.array([[500.0, 0.0]]), 50.0)
    assert windows[0] == SlotInterval(90, 109)


def test_availability_unreachable(traj):
    windows = traj.availability(np.array([[500.0, 80.0]]), 50.0)
    assert windows[0] is None


def test_availability_clipped_at_path_start(traj):
    windows = traj.availability(np.array([[0.0, 0.0]]), 50.0)
    assert windows[0].start == 0


def test_availability_anchor_distances_within_range(traj):
    """Every slot in A(v) has its anchor within R of the sensor."""
    rng = np.random.default_rng(0)
    xy = np.column_stack(
        [rng.uniform(0, 1000, 30), rng.uniform(-180, 180, 30)]
    )
    windows = traj.availability(xy, 200.0)
    for pos, window in zip(xy, windows):
        if window is None:
            continue
        d = traj.distances_to(pos, window.slots())
        assert np.all(d <= 200.0 + 1e-9)


def test_availability_maximal(traj):
    """Slots just outside A(v) have anchors beyond R (window is maximal)."""
    rng = np.random.default_rng(1)
    xy = np.column_stack(
        [rng.uniform(100, 900, 30), rng.uniform(-180, 180, 30)]
    )
    windows = traj.availability(xy, 200.0)
    for pos, window in zip(xy, windows):
        if window is None:
            continue
        for outside in (window.start - 1, window.end + 1):
            if 0 <= outside < traj.num_slots:
                d = traj.distances_to(pos, np.array([outside]))
                assert d[0] > 200.0 - 1e-9


def test_probe_interval_slots(traj):
    # R=50 -> Gamma=10.
    assert traj.probe_interval(0, 50.0) == SlotInterval(0, 9)
    assert traj.probe_interval(1, 50.0) == SlotInterval(10, 19)


def test_probe_interval_last_truncated():
    t = SinkTrajectory(LinearPath(1025.0), 5.0, 1.0)  # T=205, Gamma=10
    last = t.num_probe_intervals(50.0) - 1
    assert t.probe_interval(last, 50.0) == SlotInterval(200, 204)


def test_probe_interval_out_of_range(traj):
    with pytest.raises(IndexError):
        traj.probe_interval(100, 50.0)
    with pytest.raises(IndexError):
        traj.probe_interval(-1, 50.0)


def test_num_probe_intervals(traj):
    assert traj.num_probe_intervals(50.0) == 20


def test_probe_intervals_partition_slots(traj):
    covered = []
    for j in range(traj.num_probe_intervals(50.0)):
        covered.extend(traj.probe_interval(j, 50.0))
    assert covered == list(range(traj.num_slots))
