"""Harvest models: constant, solar, Markov, trace playback."""

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.energy.harvester import (
    ConstantHarvester,
    HarvestModel,
    MarkovHarvester,
    SolarHarvester,
    TraceHarvester,
)
from repro.energy.solar import sunny_profile

HOUR = 3600.0


class TestConstantHarvester:
    def test_power(self):
        assert ConstantHarvester(0.5).power(123.0) == 0.5

    def test_energy(self):
        assert ConstantHarvester(2.0).energy(10.0, 25.0) == pytest.approx(30.0)

    def test_zero_power_allowed(self):
        assert ConstantHarvester(0.0).energy(0.0, 100.0) == 0.0

    def test_negative_power_rejected(self):
        with pytest.raises(ValueError):
            ConstantHarvester(-1.0)

    def test_reversed_window_rejected(self):
        with pytest.raises(ValueError):
            ConstantHarvester(1.0).energy(10.0, 5.0)

    def test_satisfies_protocol(self):
        assert isinstance(ConstantHarvester(1.0), HarvestModel)


class TestSolarHarvester:
    def test_scales_with_area(self):
        profile = sunny_profile()
        small = SolarHarvester(profile, 100.0)
        big = SolarHarvester(profile, 200.0)
        assert big.energy(10 * HOUR, 14 * HOUR) == pytest.approx(
            2.0 * small.energy(10 * HOUR, 14 * HOUR)
        )

    def test_night_harvest_zero(self):
        h = SolarHarvester(sunny_profile(), 100.0)
        assert h.energy(0.0, 4 * HOUR) == pytest.approx(0.0, abs=1e-9)

    def test_power_at_noon_positive(self):
        h = SolarHarvester(sunny_profile(), 100.0)
        assert h.power(12 * HOUR) > 0

    def test_paper_panel_daily_energy_magnitude(self):
        # 10x10 mm panel: ~86 J per sunny day (172 J per 48 h).
        h = SolarHarvester(sunny_profile(), 100.0)
        daily = h.energy(0.0, 24 * HOUR)
        assert 80.0 < daily < 95.0

    def test_satisfies_protocol(self):
        assert isinstance(SolarHarvester(sunny_profile(), 10.0), HarvestModel)


class TestMarkovHarvester:
    def test_deterministic_given_seed(self):
        a = MarkovHarvester(1.0, seed=4)
        b = MarkovHarvester(1.0, seed=4)
        assert a.energy(0.0, 10_000.0) == pytest.approx(b.energy(0.0, 10_000.0))

    def test_energy_bounded_by_full_on(self):
        h = MarkovHarvester(2.0, mean_on=100.0, mean_off=100.0, seed=1)
        e = h.energy(0.0, 5000.0)
        assert 0.0 <= e <= 2.0 * 5000.0

    def test_starts_on(self):
        h = MarkovHarvester(1.5, seed=0)
        assert h.power(0.0) == 1.5

    def test_energy_additive(self):
        h = MarkovHarvester(1.0, mean_on=50.0, mean_off=50.0, seed=2)
        total = h.energy(0.0, 2000.0)
        split = h.energy(0.0, 777.0) + h.energy(777.0, 2000.0)
        assert total == pytest.approx(split)

    def test_energy_beyond_initial_horizon(self):
        h = MarkovHarvester(1.0, seed=3, horizon=100.0)
        # Query far past the pre-sampled horizon: path extends lazily.
        assert h.energy(0.0, 50_000.0) >= 0.0

    def test_long_run_mean_near_duty_cycle(self):
        h = MarkovHarvester(1.0, mean_on=100.0, mean_off=300.0, seed=5)
        horizon = 2_000_000.0
        duty = h.energy(0.0, horizon) / horizon
        assert duty == pytest.approx(0.25, abs=0.05)

    def test_reversed_window_rejected(self):
        with pytest.raises(ValueError):
            MarkovHarvester(1.0).energy(5.0, 1.0)


class TestTraceHarvester:
    def test_piecewise_energy_exact(self):
        h = TraceHarvester([0.0, 10.0, 20.0], [1.0, 3.0, 0.5])
        # [0,10): 1 W, [10,20): 3 W, beyond: 0.5 W.
        assert h.energy(0.0, 20.0) == pytest.approx(10.0 + 30.0)
        assert h.energy(5.0, 15.0) == pytest.approx(5.0 + 15.0)
        assert h.energy(20.0, 24.0) == pytest.approx(2.0)

    def test_power_lookup(self):
        h = TraceHarvester([0.0, 10.0], [1.0, 2.0])
        assert h.power(5.0) == 1.0
        assert h.power(10.0) == 2.0
        assert h.power(100.0) == 2.0

    def test_before_trace_extends_first_value(self):
        h = TraceHarvester([10.0, 20.0], [2.0, 1.0])
        assert h.power(0.0) == 2.0
        assert h.energy(0.0, 10.0) == pytest.approx(20.0)

    def test_requires_increasing_times(self):
        with pytest.raises(ValueError):
            TraceHarvester([0.0, 0.0], [1.0, 2.0])

    def test_rejects_negative_power(self):
        with pytest.raises(ValueError):
            TraceHarvester([0.0, 1.0], [1.0, -2.0])

    def test_rejects_mismatched_lengths(self):
        with pytest.raises(ValueError):
            TraceHarvester([0.0, 1.0], [1.0])

    @given(
        st.lists(st.floats(0.0, 100.0), min_size=2, max_size=8, unique=True),
        st.data(),
    )
    def test_energy_matches_numeric_integral(self, times, data):
        times = sorted(times)
        powers = [
            data.draw(st.floats(0.0, 5.0)) for _ in times
        ]
        h = TraceHarvester(times, powers)
        t0 = data.draw(st.floats(times[0], times[-1]))
        t1 = data.draw(st.floats(t0, times[-1]))
        grid = np.linspace(t0, t1, 4001)
        numeric = np.trapezoid([h.power(t) for t in grid], grid)
        assert h.energy(t0, t1) == pytest.approx(numeric, abs=0.2)
