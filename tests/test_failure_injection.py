"""Control-channel loss injection in the online framework."""

import numpy as np
import pytest

from repro.online.framework import run_online
from repro.online.online_appro import GapIntervalScheduler
from repro.sim.scenario import ScenarioConfig
from tests.conftest import random_instance


def _run(inst, gamma, loss, seed=0):
    return run_online(inst, gamma, GapIntervalScheduler(), loss_rate=loss, loss_seed=seed)


def test_zero_loss_is_baseline(rng):
    inst = random_instance(rng, num_slots=20, num_sensors=6)
    base = run_online(inst, 5, GapIntervalScheduler())
    lossy = _run(inst, 5, 0.0)
    np.testing.assert_array_equal(base.allocation.slot_owner, lossy.allocation.slot_owner)


def test_total_loss_collects_nothing(rng):
    inst = random_instance(rng, num_slots=20, num_sensors=6)
    result = _run(inst, 5, 1.0)
    assert result.collected_bits == 0.0
    assert all(len(r.registered) == 0 for r in result.intervals)


def test_allocation_stays_feasible_under_loss(rng):
    for loss in (0.2, 0.5, 0.8):
        inst = random_instance(rng, num_slots=24, num_sensors=7)
        result = _run(inst, 6, loss)
        result.allocation.check_feasible(inst)


def test_loss_deterministic_per_seed(rng):
    inst = random_instance(rng, num_slots=20, num_sensors=6)
    a = _run(inst, 5, 0.5, seed=7)
    b = _run(inst, 5, 0.5, seed=7)
    np.testing.assert_array_equal(a.allocation.slot_owner, b.allocation.slot_owner)


def test_loss_seed_varies_outcome():
    scenario = ScenarioConfig(num_sensors=60, path_length=3000.0).build(seed=2)
    inst = scenario.instance()
    outcomes = {
        _run(inst, scenario.gamma, 0.5, seed=s).collected_bits for s in range(5)
    }
    assert len(outcomes) > 1


def test_throughput_degrades_with_loss():
    """Mean throughput decreases as the loss rate rises (graceful
    degradation — partial losses get second chances at the next probe)."""
    scenario = ScenarioConfig(num_sensors=80, path_length=4000.0).build(seed=3)
    inst = scenario.instance()
    means = []
    for loss in (0.0, 0.3, 0.7, 1.0):
        vals = [
            _run(inst, scenario.gamma, loss, seed=s).collected_bits for s in range(4)
        ]
        means.append(np.mean(vals))
    assert all(a >= b - 1e-9 for a, b in zip(means, means[1:])), means
    # The two-interval redundancy makes 30% loss cost well under 30%.
    assert means[1] >= 0.75 * means[0]


def test_lost_sensors_not_counted_in_messages(rng):
    inst = random_instance(rng, num_slots=20, num_sensors=6)
    base = run_online(inst, 5, GapIntervalScheduler())
    lossy = _run(inst, 5, 0.6)
    assert lossy.messages.total_messages <= base.messages.total_messages


def test_invalid_loss_rate_rejected(rng):
    inst = random_instance(rng, num_slots=10, num_sensors=3)
    with pytest.raises(ValueError):
        _run(inst, 5, 1.5)
    with pytest.raises(ValueError):
        _run(inst, 5, -0.1)
