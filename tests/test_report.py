"""Report formatting: tables and charts, directly."""

import pytest

from repro.experiments.report import (
    format_records,
    format_series_chart,
    format_series_table,
)
from repro.experiments.sweep import SweepPoint, SweepRecord, SweepResult


def make_result(points):
    """points: list of (panel, n, algorithm, megabits)."""
    records = []
    for k, (panel, n, algo, mb) in enumerate(points):
        records.append(
            SweepRecord(
                label=(("n", n), ("panel", panel)),
                algorithm=algo,
                repeat=0,
                seed=k,
                collected_bits=mb * 1e6,
                collected_megabits=mb,
                wall_time=0.01,
                total_messages=5 * n,
            )
        )
    return SweepResult(records)


@pytest.fixture
def result():
    return make_result(
        [
            ("p1", 100, "A", 10.0),
            ("p1", 100, "B", 8.0),
            ("p1", 200, "A", 20.0),
            ("p1", 200, "B", 16.0),
            ("p2", 100, "A", 5.0),
            ("p2", 200, "A", 9.0),
        ]
    )


class TestTable:
    def test_one_table_per_panel(self, result):
        text = format_series_table(result)
        assert "[p1]" in text and "[p2]" in text

    def test_missing_cell_shows_dash(self, result):
        text = format_series_table(result)
        # Algorithm B never ran in panel p2.
        p2_block = text.split("[p2]")[1]
        assert "B" not in p2_block or "-" in p2_block

    def test_custom_value_and_unit(self, result):
        text = format_series_table(result, value="total_messages", unit="msgs")
        assert "msgs" in text
        assert "500.00" in text  # 5 * n at n=100

    def test_no_panel_key(self, result):
        text = format_series_table(result, panel_key=None)
        assert "n=100" in text and "n=200" in text


class TestChart:
    def test_chart_per_panel(self, result):
        text = format_series_chart(result)
        assert "[p1]" in text and "[p2]" in text
        assert "A" in text

    def test_single_x_panel_skipped(self):
        result = make_result([("solo", 100, "A", 1.0)])
        assert format_series_chart(result) == ""

    def test_non_numeric_x_skipped(self):
        records = make_result([("p", 100, "A", 1.0)]).records
        # Rewrite labels to a non-numeric x key value.
        hacked = SweepResult(
            [
                SweepRecord(
                    label=(("n", "tiny"), ("panel", "p")),
                    algorithm=r.algorithm,
                    repeat=r.repeat,
                    seed=r.seed,
                    collected_bits=r.collected_bits,
                    collected_megabits=r.collected_megabits,
                    wall_time=r.wall_time,
                    total_messages=r.total_messages,
                )
                for r in records * 2
            ]
        )
        assert format_series_chart(hacked) == ""


class TestRecords:
    def test_format_records_contents(self, result):
        text = format_records(result, limit=3)
        assert "A" in text
        assert "Mb" in text
        assert "more records" in text

    def test_format_records_no_truncation_note_when_small(self, result):
        text = format_records(result, limit=100)
        assert "more records" not in text
