"""Core benchmark: document shape, determinism knobs, CLI wiring."""

from __future__ import annotations

import json

import pytest

from repro.cli import build_parser
from repro.experiments.bench import (
    BENCH_FORMAT,
    BENCH_VERSION,
    FULL_GRID,
    QUICK_GRID,
    render_bench,
    run_bench,
)

#: One tiny cell and two cheap algorithms — keeps the test in the tier-1 budget.
TINY_GRID = ((12, 1500.0),)
TINY_ALGOS = ("Baseline[greedy_profit]", "Offline_Appro")


@pytest.fixture(scope="module")
def tiny_doc():
    return run_bench(quick=True, seed=3, grid=TINY_GRID, algorithms=TINY_ALGOS)


def test_document_shape(tiny_doc):
    assert tiny_doc["format"] == BENCH_FORMAT
    assert tiny_doc["version"] == BENCH_VERSION
    assert tiny_doc["quick"] is True
    assert tiny_doc["seed"] == 3
    assert len(tiny_doc["entries"]) == len(TINY_GRID) * len(TINY_ALGOS)
    entry = tiny_doc["entries"][0]
    assert entry["algorithm"] == TINY_ALGOS[0]
    assert entry["num_sensors"] == 12
    assert entry["wall_s"] > 0
    assert entry["collected_megabits"] > 0
    assert "solve_s" in entry["profile"]


def test_entries_carry_solver_counters(tiny_doc):
    by_algo = {e["algorithm"]: e for e in tiny_doc["entries"]}
    appro = by_algo["Offline_Appro"]
    assert appro["counters"].get("knapsack.calls", 0) > 0
    assert appro["timers"]["tour.solve"]["count"] >= 1


def test_document_is_json_serialisable(tiny_doc):
    assert json.loads(json.dumps(tiny_doc)) == tiny_doc


def test_maxmatch_cells_pin_fixed_power():
    doc = run_bench(
        quick=True, seed=3, grid=TINY_GRID, algorithms=("Offline_MaxMatch",)
    )
    [entry] = doc["entries"]
    assert entry["fixed_power"] == 0.3
    assert entry["collected_megabits"] > 0


def test_render_bench_lists_every_entry(tiny_doc):
    text = render_bench(tiny_doc)
    lines = text.splitlines()
    # Header line, optional provenance line (present inside a git
    # checkout), then one line per entry.
    has_provenance = tiny_doc["provenance"].get("git_commit") is not None
    assert len(lines) == 1 + int(has_provenance) + len(tiny_doc["entries"])
    for entry in tiny_doc["entries"]:
        assert any(entry["algorithm"] in line for line in lines[1:])


def test_document_carries_provenance(tiny_doc):
    provenance = tiny_doc["provenance"]
    assert set(provenance) == {"git_commit", "git_dirty", "label"}
    assert tiny_doc["repeat"] == 1
    # This test suite runs inside a git checkout, so the SHA resolves.
    commit = provenance["git_commit"]
    if commit is not None:
        assert len(commit) == 40
        assert isinstance(provenance["git_dirty"], bool)


def test_label_lands_in_provenance_and_render():
    doc = run_bench(
        quick=True,
        seed=3,
        grid=TINY_GRID,
        algorithms=("Baseline[greedy_profit]",),
        label="ci-main",
    )
    assert doc["provenance"]["label"] == "ci-main"
    if doc["provenance"]["git_commit"] is not None:
        assert "label=ci-main" in render_bench(doc).splitlines()[0]


def test_repeat_takes_min_and_reports_spread():
    doc = run_bench(
        quick=True,
        seed=3,
        grid=TINY_GRID,
        algorithms=("Baseline[greedy_profit]",),
        repeat=3,
    )
    assert doc["repeat"] == 3
    [entry] = doc["entries"]
    stats = entry["wall_stats"]
    assert stats["repeats"] == 3
    assert stats["min_s"] <= stats["median_s"] <= stats["max_s"]
    assert entry["wall_s"] == stats["min_s"]


def test_repeat_must_be_positive():
    with pytest.raises(ValueError, match="repeat"):
        run_bench(quick=True, seed=3, grid=TINY_GRID,
                  algorithms=("Offline_Appro",), repeat=0)


def test_grids_are_distinct():
    assert QUICK_GRID != FULL_GRID
    assert all(n <= 60 for n, _ in QUICK_GRID)


def test_shrunk_runs_skip_planner_cells(tiny_doc):
    """Overriding grid/algorithms must not sneak planner cells in."""
    assert not any(
        e["algorithm"].startswith("Planner[") for e in tiny_doc["entries"]
    )


def test_planner_cells_run_plan_solve_pipeline():
    doc = run_bench(
        quick=True,
        seed=3,
        grid=(),
        algorithms=(),
        planner_grid=(("plane_sweep", 12, 1500.0), ("multi_sink", 12, 1500.0)),
    )
    names = [e["algorithm"] for e in doc["entries"]]
    assert names == ["Planner[plane_sweep]", "Planner[multi_sink]"]
    for entry in doc["entries"]:
        # The plan phase joins the wall profile, so the compare gate
        # grades planning time like any other phase.
        assert entry["profile"]["plan_s"] > 0
        assert entry["profile"]["plan_s"] <= entry["wall_s"]
        # Machine-independent planner work counters land in the cell.
        assert entry["counters"]["planner.plans"] == 1
        assert entry["collected_megabits"] > 0
    by_name = {e["algorithm"]: e for e in doc["entries"]}
    assert by_name["Planner[plane_sweep]"]["counters"]["planner.sweep.segments"] > 0


def test_default_quick_grid_includes_planner_cells():
    from repro.experiments.bench import PLANNER_QUICK_GRID

    kinds = {kind for kind, _, _ in PLANNER_QUICK_GRID}
    assert kinds == {"plane_sweep", "multi_sink"}


def test_scale_and_batch_cells_run_and_agree():
    from repro.experiments.bench import BATCH_ALGORITHMS

    doc = run_bench(
        quick=True,
        seed=3,
        grid=(),
        algorithms=(),
        scale_grid=(("Offline_Appro", 12, 1500.0),),
        batch_grid=((12, 1500.0),),
    )
    names = [e["algorithm"] for e in doc["entries"]]
    assert names == ["Offline_Appro", "Batch[mixed]"]
    scale, batch = doc["entries"]
    assert scale["num_sensors"] == 12
    assert scale["collected_megabits"] > 0
    # The batch cell runs every mixed algorithm through one shared
    # instance preparation and carries the batch work counters.
    assert batch["counters"]["batch.groups"] == 1
    assert batch["counters"]["batch.tours"] == len(BATCH_ALGORITHMS)
    assert batch["counters"]["tour.runs"] == len(BATCH_ALGORITHMS)
    assert batch["profile"]["prepare_s"] >= 0
    # Shared preparation means the batch's summed megabits include the
    # scale cell's algorithm on the identical deployment.
    assert batch["collected_megabits"] > scale["collected_megabits"]


def test_batch_cell_megabits_equals_sequential_sum():
    from repro.experiments.bench import BATCH_ALGORITHMS
    from repro.obs import MetricsRegistry, use_registry
    from repro.sim import ScenarioConfig, run_tour
    from repro.sim.algorithms import get_algorithm

    doc = run_bench(
        quick=True, seed=3, grid=(), algorithms=(), batch_grid=((12, 1500.0),)
    )
    [batch] = doc["entries"]
    total = 0.0
    for name in BATCH_ALGORITHMS:
        scenario = ScenarioConfig(num_sensors=12, path_length=1500.0).build(seed=3)
        with use_registry(MetricsRegistry()):
            result = run_tour(scenario, get_algorithm(name), mutate=False)
        total += result.collected_megabits
    assert batch["collected_megabits"] == total


def test_default_quick_grid_includes_scale_and_batch_cells():
    from repro.experiments.bench import BATCH_GRID, SCALE_GRID

    assert all(n >= 600 for _, n, _ in SCALE_GRID)
    assert all(n >= 600 for n, _ in BATCH_GRID)


def test_cli_accepts_bench_flags(tmp_path):
    parser = build_parser()
    args = parser.parse_args(
        ["bench", "--quick", "--seed", "11", "--json", str(tmp_path / "b.json")]
    )
    assert args.command == "bench"
    assert args.quick is True
    assert args.seed == 11
    args = parser.parse_args(["bench"])
    assert args.quick is False and args.json is None
    assert args.repeat == 1 and args.label is None and args.compare is None
    args = parser.parse_args(["bench", "--quick", "--repeat", "3",
                              "--label", "ci"])
    assert args.repeat == 3 and args.label == "ci"


def test_cli_bench_record_flag_forms():
    parser = build_parser()
    assert parser.parse_args(["bench"]).record is None
    assert parser.parse_args(["bench", "--record"]).record == "benchmarks/history"
    assert parser.parse_args(["bench", "--record", "hist"]).record == "hist"


def test_cli_accepts_new_serve_flags(tmp_path):
    parser = build_parser()
    args = parser.parse_args(
        [
            "serve",
            "--trace-threshold",
            "0.5",
            "--trace-dir",
            str(tmp_path),
            "--access-log",
            str(tmp_path / "access.log"),
        ]
    )
    assert args.trace_threshold == 0.5
    assert args.trace_dir == str(tmp_path)
    assert args.access_log == str(tmp_path / "access.log")
    args = parser.parse_args(["serve"])
    assert args.trace_threshold is None
    assert args.max_batch_items == 32
    args = parser.parse_args(["serve", "--max-batch-items", "8"])
    assert args.max_batch_items == 8
