"""Unit-conversion correctness and round-trips."""

import numpy as np
import pytest

from repro import units


def test_mw_to_w_scalar():
    assert units.mw_to_w(170.0) == pytest.approx(0.170)


def test_w_to_mw_scalar():
    assert units.w_to_mw(0.33) == pytest.approx(330.0)


def test_mw_roundtrip():
    assert units.w_to_mw(units.mw_to_w(123.4)) == pytest.approx(123.4)


def test_kbps_to_bps():
    assert units.kbps_to_bps(250.0) == pytest.approx(250_000.0)


def test_kbps_roundtrip():
    assert units.bps_to_kbps(units.kbps_to_bps(19.2)) == pytest.approx(19.2)


def test_mwh_to_joules_known_value():
    # 1 mWh = 3.6 J.
    assert units.mwh_to_joules(1.0) == pytest.approx(3.6)


def test_paper_sunny_total_in_joules():
    # 655.15 mWh over 48 h on the 37x37 panel = 2358.54 J.
    assert units.mwh_to_joules(655.15) == pytest.approx(2358.54)


def test_joules_roundtrip():
    assert units.joules_to_mwh(units.mwh_to_joules(313.7)) == pytest.approx(313.7)


def test_bits_to_megabits():
    assert units.bits_to_megabits(2_500_000) == pytest.approx(2.5)


def test_megabits_roundtrip():
    assert units.megabits_to_bits(units.bits_to_megabits(7.7e6)) == pytest.approx(7.7e6)


def test_hours_to_seconds():
    assert units.hours_to_seconds(1.5) == pytest.approx(5400.0)


def test_seconds_roundtrip():
    assert units.seconds_to_hours(units.hours_to_seconds(3.25)) == pytest.approx(3.25)


def test_converters_accept_arrays():
    arr = np.array([1.0, 2.0, 4.0])
    out = units.kbps_to_bps(arr)
    np.testing.assert_allclose(out, [1000.0, 2000.0, 4000.0])


def test_array_conversion_preserves_shape():
    arr = np.ones((3, 2))
    assert units.mw_to_w(arr).shape == (3, 2)
