"""Online_Appro and Online_MaxMatch behaviour."""

import numpy as np
import pytest

from repro.core.exact import brute_force_optimum
from repro.core.offline_appro import offline_appro
from repro.core.offline_maxmatch import offline_maxmatch
from repro.online.online_appro import online_appro
from repro.online.online_maxmatch import MatchingIntervalScheduler, online_maxmatch
from repro.sim.scenario import ScenarioConfig
from tests.conftest import make_instance, random_instance


def fixed_instance(rng, **kwargs):
    return random_instance(rng, fixed_power=0.3, **kwargs)


class TestOnlineAppro:
    def test_feasible(self, rng):
        for _ in range(8):
            inst = random_instance(rng, num_slots=20, num_sensors=6)
            online_appro(inst, 5).allocation.check_feasible(inst)

    def test_never_beats_offline_on_paper_scenarios(self):
        for seed in range(4):
            scenario = ScenarioConfig(num_sensors=50, path_length=3000.0).build(seed=seed)
            inst = scenario.instance()
            off = offline_appro(inst).collected_bits(inst)
            on = online_appro(inst, scenario.gamma).collected_bits
            # Locality can occasionally help the heuristic, but on the
            # paper's geometry the offline pass dominates.
            assert on <= off * 1.02 + 1e-9

    def test_within_fraction_of_offline(self):
        """The paper reports online >= 93% of offline at default setting."""
        ratios = []
        for seed in range(5):
            scenario = ScenarioConfig(num_sensors=80, path_length=4000.0).build(seed=seed)
            inst = scenario.instance()
            off = offline_appro(inst).collected_bits(inst)
            on = online_appro(inst, scenario.gamma).collected_bits
            ratios.append(on / off)
        assert np.mean(ratios) >= 0.85

    def test_knapsack_method_passthrough(self, rng):
        inst = random_instance(rng, num_slots=16, num_sensors=5)
        a = online_appro(inst, 4, knapsack_method="greedy")
        b = online_appro(inst, 4, knapsack_method="auto")
        a.allocation.check_feasible(inst)
        assert b.collected_bits >= a.collected_bits - 1e-9 or True  # both valid


class TestOnlineMaxMatch:
    def test_feasible(self, rng):
        for _ in range(8):
            inst = fixed_instance(rng, num_slots=20, num_sensors=6)
            online_maxmatch(inst, 5).allocation.check_feasible(inst)

    def test_never_beats_offline_optimum(self, rng):
        for _ in range(8):
            inst = fixed_instance(rng, num_slots=16, num_sensors=5)
            off = offline_maxmatch(inst).collected_bits(inst)
            on = online_maxmatch(inst, 4).collected_bits
            assert on <= off + 1e-9

    def test_interval_schedule_is_optimal(self):
        """Within a single interval covering the whole horizon (and full
        probe visibility), online equals the offline optimum."""
        inst = make_instance(
            4,
            1.0,
            [
                {
                    "window": (0, 3),
                    "rates": [4.0, 3.0, 2.0, 1.0],
                    "powers": [0.3] * 4,
                    "budget": 0.65,  # 2 slots
                },
                {
                    "window": (0, 3),
                    "rates": [1.0, 2.0, 5.0, 5.0],
                    "powers": [0.3] * 4,
                    "budget": 0.9,  # 3 slots
                },
            ],
        )
        on = online_maxmatch(inst, 4).collected_bits
        opt = brute_force_optimum(inst).collected_bits(inst)
        assert on == pytest.approx(opt)

    def test_explicit_power_matches_detection(self, rng):
        inst = fixed_instance(rng, num_slots=16, num_sensors=5)
        auto = online_maxmatch(inst, 4).collected_bits
        manual = online_maxmatch(inst, 4, fixed_power=0.3).collected_bits
        assert auto == pytest.approx(manual)

    def test_engine_equivalence(self, rng):
        inst = fixed_instance(rng, num_slots=16, num_sensors=5)
        flow = online_maxmatch(inst, 4, engine="flow").collected_bits
        lp = online_maxmatch(inst, 4, engine="lp").collected_bits
        lsa = online_maxmatch(inst, 4, engine="lsa").collected_bits
        assert flow == pytest.approx(lp)
        assert flow == pytest.approx(lsa)

    def test_scheduler_respects_copy_cap(self):
        """n_i' = floor(P/(P' tau)) limits slots per interval."""
        inst = make_instance(
            4,
            1.0,
            [
                {
                    "window": (0, 3),
                    "rates": [4.0, 4.0, 4.0, 4.0],
                    "powers": [0.3] * 4,
                    "budget": 0.65,  # only 2 slots affordable
                }
            ],
        )
        result = online_maxmatch(inst, 4)
        assert result.allocation.num_assigned() == 2

    def test_beats_or_ties_online_appro_on_average(self):
        """Fig. 3's qualitative claim: matching >= GAP online, on the
        paper's geometry, on average."""
        diffs = []
        for seed in range(5):
            scenario = ScenarioConfig(
                num_sensors=60, path_length=3000.0, fixed_power=0.3
            ).build(seed=seed)
            inst = scenario.instance()
            mm = online_maxmatch(inst, scenario.gamma).collected_bits
            ap = online_appro(inst, scenario.gamma).collected_bits
            diffs.append(mm - ap)
        assert np.mean(diffs) >= -1e-6
