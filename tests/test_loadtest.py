"""Loadtest harness tests: mix parsing, scrape parsing, SLO grading.

The integration tests drive a real in-process :class:`PlanningService`
(same fixture shape as ``test_service.py``) with a tiny fixed request
budget so the suite stays fast and deterministic.
"""

from __future__ import annotations

import json
import threading

import pytest

from repro.cli import build_parser
from repro.loadtest import (
    LOADTEST_FORMAT,
    LoadTestConfig,
    counter_delta,
    parse_mix,
    parse_prometheus_text,
    render_report,
    run_loadtest,
    sample_total,
)
from repro.obs import MetricsRegistry
from repro.service import PlanningService, create_server


class TestParseMix:
    def test_weighted_spec(self):
        assert parse_mix("solve=2,cached=2,jobs=1") == {
            "solve": 2,
            "cached": 2,
            "jobs": 1,
        }

    def test_bare_name_defaults_to_weight_one(self):
        assert parse_mix("solve") == {"solve": 1}

    def test_omitted_ops_are_simply_absent(self):
        assert parse_mix("cached=3") == {"cached": 3}

    def test_unknown_operation_rejected(self):
        with pytest.raises(ValueError, match="unknown mix operation"):
            parse_mix("solve=1,deletes=2")

    def test_non_integer_weight_rejected(self):
        with pytest.raises(ValueError, match="must be an integer"):
            parse_mix("solve=fast")

    def test_negative_weight_rejected(self):
        with pytest.raises(ValueError, match=">= 0"):
            parse_mix("solve=-1")

    def test_all_zero_weights_rejected(self):
        with pytest.raises(ValueError, match="selects no operations"):
            parse_mix("solve=0,jobs=0")


class TestPromScrape:
    TEXT = "\n".join(
        [
            "# HELP repro_service_cache_hit_total Monotonic counter.",
            "# TYPE repro_service_cache_hit_total counter",
            "repro_service_cache_hit_total 5",
            'repro_knapsack_solve_seconds{quantile="0.5"} 0.01',
            'repro_matching_engine_seconds_count{engine="scipy"} 3',
            'repro_matching_engine_seconds_count{engine="pure"} 2',
            "this line is garbage",
            "repro_bad_value NaN-ish",
            "",
        ]
    )

    def test_parse_skips_comments_and_garbage(self):
        samples = parse_prometheus_text(self.TEXT)
        assert samples["repro_service_cache_hit_total"][()] == 5.0
        assert samples["repro_knapsack_solve_seconds"][
            (("quantile", "0.5"),)
        ] == 0.01
        assert "repro_bad_value" not in samples
        assert "this" not in samples

    def test_sample_total_sums_across_label_sets(self):
        samples = parse_prometheus_text(self.TEXT)
        assert sample_total(samples, "repro_matching_engine_seconds_count") == 5.0
        assert sample_total(samples, "repro_absent_total") is None

    def test_counter_delta(self):
        before = parse_prometheus_text("repro_a_total 3")
        after = parse_prometheus_text("repro_a_total 10\nrepro_b_total 4")
        assert counter_delta(before, after, "repro_a_total") == 7.0
        # Absent before, present after: counters appear on first increment.
        assert counter_delta(before, after, "repro_b_total") == 4.0
        # Absent from both scrapes: unknown, not zero.
        assert counter_delta(before, after, "repro_c_total") is None

    def test_round_trip_with_real_exposition(self):
        from repro.obs.promexpo import render_prometheus

        registry = MetricsRegistry()
        registry.inc("loadtest.requests", 3)
        registry.observe("x.y", 0.5)
        samples = parse_prometheus_text(render_prometheus(registry.snapshot()))
        assert sample_total(samples, "repro_loadtest_requests_total") == 3.0
        assert sample_total(samples, "repro_x_y_seconds_count") == 1.0


class TestConfig:
    def test_defaults_are_valid(self):
        config = LoadTestConfig()
        assert config.mix == {"solve": 2, "cached": 2, "jobs": 1}

    def test_rejects_bad_concurrency(self):
        with pytest.raises(ValueError, match="concurrency"):
            LoadTestConfig(concurrency=0)

    def test_rejects_bad_duration(self):
        with pytest.raises(ValueError, match="duration_s"):
            LoadTestConfig(duration_s=0.0)

    def test_rejects_bad_budget(self):
        with pytest.raises(ValueError, match="total_requests"):
            LoadTestConfig(total_requests=0)

    def test_rejects_empty_mix(self):
        with pytest.raises(ValueError, match="selects no operations"):
            LoadTestConfig(mix={"solve": 0})

    def test_rejects_bad_queue_sample_interval(self):
        with pytest.raises(ValueError, match="queue_sample_interval_s"):
            LoadTestConfig(queue_sample_interval_s=0.0)

    def test_cli_parser_has_loadtest_command(self):
        args = build_parser().parse_args(
            [
                "loadtest",
                "--url", "http://127.0.0.1:9999",
                "--concurrency", "2",
                "--requests", "8",
                "--mix", "solve=1,cached=3",
                "--slo-p95-ms", "500",
                "--slo-error-rate", "0.01",
            ]
        )
        assert args.command == "loadtest"
        assert args.url == "http://127.0.0.1:9999"
        assert args.requests == 8
        assert parse_mix(args.mix) == {"solve": 1, "cached": 3}


@pytest.fixture(scope="module")
def served():
    """One live planning service on an ephemeral port for the module."""
    registry = MetricsRegistry()
    service = PlanningService(
        workers=2, cache_size=64, request_timeout=120.0, registry=registry
    )
    server = create_server(service, port=0)
    thread = threading.Thread(target=server.serve_forever, daemon=True)
    thread.start()
    yield f"http://127.0.0.1:{server.server_address[1]}"
    server.shutdown()
    service.shutdown()
    thread.join(timeout=10)


class TestRunLoadtest:
    def test_small_run_reports_latency_and_server_side_cache(self, served):
        config = LoadTestConfig(
            base_url=served,
            concurrency=2,
            duration_s=60.0,          # budget, not the clock, ends the run
            total_requests=10,
            mix={"solve": 1, "cached": 3},
            num_sensors=12,
            seed=5,
        )
        registry = MetricsRegistry()
        report = run_loadtest(config, registry=registry)

        assert report["format"] == LOADTEST_FORMAT
        assert report["requests"] == 10
        assert report["errors"] == 0
        assert report["status_counts"].get("200") == 10
        assert report["slo"]["passed"] is True  # no SLOs asserted

        overall = report["latency_ms"]["overall"]
        assert overall["count"] == 10
        assert 0 < overall["p50_ms"] <= overall["p95_ms"] <= overall["max_ms"]
        assert set(report["latency_ms"]["per_op"]) <= {"solve", "cached"}

        server = report["server"]
        assert server["scraped"] is True
        delta = server["delta"]
        assert delta["repro_service_http_requests_total"] >= 10
        # Fixed-seed replays hit the cache after the first miss.
        assert delta["repro_service_cache_hit_total"] >= 1
        assert 0.0 < server["cache_hit_rate"] <= 1.0
        healthz_cache = server["healthz_cache"]
        assert healthz_cache["hits"] >= 1
        assert 0.0 <= healthz_cache["hit_rate"] <= 1.0

        # The background sampler observed the executor queue at least
        # once (it samples before its first wait).
        depth = report["queue_depth"]
        assert depth["samples"] >= 1
        assert 0 <= depth["min"] <= depth["median"] <= depth["max"]

        # Report is a JSON document and renders without error.
        assert json.loads(json.dumps(report)) == report
        text = render_report(report)
        assert "cache hit-rate" in text
        assert "server queue depth:" in text
        assert "no SLOs asserted" in text

    def test_jobs_scenario_round_trips(self, served):
        config = LoadTestConfig(
            base_url=served,
            concurrency=1,
            duration_s=60.0,
            total_requests=2,
            mix={"jobs": 1},
            num_sensors=12,
            seed=6,
        )
        report = run_loadtest(config)
        assert report["requests"] == 2
        assert report["errors"] == 0
        assert report["server"]["delta"]["repro_service_jobs_submitted_total"] >= 2

    def test_impossible_slo_fails_the_run(self, served):
        config = LoadTestConfig(
            base_url=served,
            concurrency=1,
            duration_s=60.0,
            total_requests=2,
            mix={"cached": 1},
            num_sensors=12,
            slo_p95_ms=0.001,  # nothing real finishes in a microsecond
        )
        report = run_loadtest(config)
        assert report["slo"]["passed"] is False
        assert any("p95" in v for v in report["slo"]["violations"])
        assert "SLO verdict: FAIL" in render_report(report)

    def test_error_rate_slo(self, served):
        # An unknown algorithm is a 400 on every request: error rate 1.0.
        config = LoadTestConfig(
            base_url=served,
            concurrency=1,
            duration_s=60.0,
            total_requests=2,
            mix={"solve": 1},
            algorithm="No_Such_Algorithm",
            slo_error_rate=0.5,
        )
        report = run_loadtest(config)
        assert report["error_rate"] == 1.0
        assert report["slo"]["passed"] is False
        assert report["error_samples"]  # samples captured for debugging
        assert report["status_counts"].get("400") == 2

    def test_unreachable_service_fails_error_slo(self):
        config = LoadTestConfig(
            base_url="http://127.0.0.1:1",  # reserved port: connect refused
            concurrency=1,
            duration_s=2.0,
            total_requests=1,
            mix={"solve": 1},
            request_timeout=1.0,
            slo_error_rate=0.0,
        )
        report = run_loadtest(config)
        assert report["error_rate"] == 1.0
        assert report["slo"]["passed"] is False
        assert report["server"]["scraped"] is False
        assert "not scraped" in render_report(report) or "unavailable" in render_report(report)
        # No healthz reachable: the queue-depth block degrades to a
        # sample count of zero and the render omits the line.
        assert report["queue_depth"] == {"samples": 0}
        assert "server queue depth" not in render_report(report)
