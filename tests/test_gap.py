"""GAP local-ratio machinery on textbook instances."""

import itertools

import numpy as np
import pytest

from repro.core.gap import GapBin, GapInstance, GapSolution, local_ratio_gap
from repro.core.knapsack import knapsack_branch_and_bound, knapsack_greedy


def brute_force_gap(instance: GapInstance) -> float:
    """Reference GAP optimum by enumerating item -> bin assignments."""
    # Item universe with per-bin positions.
    items = sorted(
        {int(it) for b in instance.bins for it in b.items}
    )
    lookup = {}
    for bi, b in enumerate(instance.bins):
        for pos, it in enumerate(b.items):
            lookup[(bi, int(it))] = pos

    best = 0.0
    choices = []
    for it in items:
        options = [None] + [bi for bi in range(instance.num_bins) if (bi, it) in lookup]
        choices.append(options)
    for combo in itertools.product(*choices):
        used = np.zeros(instance.num_bins)
        profit = 0.0
        ok = True
        for it, bi in zip(items, combo):
            if bi is None:
                continue
            pos = lookup[(bi, it)]
            used[bi] += instance.bins[bi].weights[pos]
            profit += instance.bins[bi].profits[pos]
            if used[bi] > instance.bins[bi].capacity + 1e-12:
                ok = False
                break
        if ok:
            best = max(best, profit)
    return best


def random_gap(rng, num_bins=3, num_items=6) -> GapInstance:
    bins = []
    for _ in range(num_bins):
        k = int(rng.integers(1, num_items + 1))
        items = rng.choice(num_items, size=k, replace=False)
        bins.append(
            GapBin(
                capacity=float(rng.uniform(1.0, 5.0)),
                items=np.sort(items),
                profits=rng.uniform(0.5, 10.0, k),
                weights=rng.uniform(0.5, 3.0, k),
            )
        )
    return GapInstance(bins)


def check_solution(instance: GapInstance, sol: GapSolution) -> None:
    seen = set()
    for bi, items in sol.assignment.items():
        b = instance.bins[bi]
        lookup = {int(it): pos for pos, it in enumerate(b.items)}
        weight = 0.0
        for it in items:
            assert it in lookup, f"item {it} not a candidate of bin {bi}"
            assert it not in seen, f"item {it} assigned twice"
            seen.add(it)
            weight += b.weights[lookup[it]]
        assert weight <= b.capacity + 1e-9


class TestGapBin:
    def test_duplicate_items_rejected(self):
        with pytest.raises(ValueError):
            GapBin(1.0, np.array([1, 1]), np.ones(2), np.ones(2))

    def test_negative_capacity_rejected(self):
        with pytest.raises(ValueError):
            GapBin(-1.0, np.array([0]), np.ones(1), np.ones(1))

    def test_shape_mismatch_rejected(self):
        with pytest.raises(ValueError):
            GapBin(1.0, np.array([0, 1]), np.ones(2), np.ones(3))


class TestGapInstance:
    def test_bins_containing(self):
        inst = GapInstance(
            [
                GapBin(1.0, np.array([0, 2]), np.ones(2), np.ones(2)),
                GapBin(1.0, np.array([2]), np.ones(1), np.ones(1)),
            ]
        )
        assert inst.bins_containing(2) == [(0, 1), (1, 0)]
        assert inst.bins_containing(0) == [(0, 0)]

    def test_profit_of_assignment(self):
        inst = GapInstance(
            [GapBin(5.0, np.array([0, 1]), np.array([2.0, 3.0]), np.ones(2))]
        )
        assert inst.profit_of_assignment({0: [0, 1]}) == pytest.approx(5.0)


class TestLocalRatio:
    def test_single_bin_is_knapsack(self):
        inst = GapInstance(
            [
                GapBin(
                    50.0,
                    np.array([0, 1, 2]),
                    np.array([60.0, 100.0, 120.0]),
                    np.array([10.0, 20.0, 30.0]),
                )
            ]
        )
        sol = local_ratio_gap(inst)
        assert sol.profit == pytest.approx(220.0)

    def test_two_bins_sharing_item(self):
        # One item, two bins; the second bin values it more, and the
        # backward pass must hand the item to the tentative owner that
        # keeps it feasible and profitable.
        inst = GapInstance(
            [
                GapBin(1.0, np.array([0]), np.array([5.0]), np.array([1.0])),
                GapBin(1.0, np.array([0]), np.array([8.0]), np.array([1.0])),
            ]
        )
        sol = local_ratio_gap(inst)
        check_solution(inst, sol)
        assert sol.profit >= 5.0  # at least half of OPT=8; in fact 8
        assert sol.profit == pytest.approx(8.0)

    def test_feasibility_random(self):
        rng = np.random.default_rng(0)
        for _ in range(25):
            inst = random_gap(rng)
            sol = local_ratio_gap(inst)
            check_solution(inst, sol)

    def test_half_approximation_with_exact_knapsack(self):
        rng = np.random.default_rng(1)
        for _ in range(30):
            inst = random_gap(rng)
            opt = brute_force_gap(inst)
            sol = local_ratio_gap(inst, knapsack_solver=knapsack_branch_and_bound)
            assert sol.profit >= opt / 2.0 - 1e-9

    def test_third_approximation_with_greedy_knapsack(self):
        rng = np.random.default_rng(2)
        for _ in range(30):
            inst = random_gap(rng)
            opt = brute_force_gap(inst)
            sol = local_ratio_gap(inst, knapsack_solver=knapsack_greedy)
            assert sol.profit >= opt / 3.0 - 1e-9

    def test_profit_matches_assignment(self):
        rng = np.random.default_rng(3)
        inst = random_gap(rng)
        sol = local_ratio_gap(inst)
        assert sol.profit == pytest.approx(inst.profit_of_assignment(sol.assignment))

    def test_bin_order_permutation_still_feasible(self):
        rng = np.random.default_rng(4)
        inst = random_gap(rng, num_bins=4)
        for order in ([3, 2, 1, 0], [1, 3, 0, 2]):
            sol = local_ratio_gap(inst, bin_order=order)
            check_solution(inst, sol)

    def test_invalid_bin_order_rejected(self):
        rng = np.random.default_rng(5)
        inst = random_gap(rng, num_bins=3)
        with pytest.raises(ValueError):
            local_ratio_gap(inst, bin_order=[0, 1])

    def test_tentative_supersets_assignment(self):
        rng = np.random.default_rng(6)
        inst = random_gap(rng)
        sol = local_ratio_gap(inst)
        for bi, items in sol.assignment.items():
            assert set(items) <= set(sol.tentative[bi])

    def test_empty_instance(self):
        sol = local_ratio_gap(GapInstance([]))
        assert sol.profit == 0.0

    def test_bin_with_no_items(self):
        inst = GapInstance(
            [GapBin(1.0, np.zeros(0, dtype=np.int64), np.zeros(0), np.zeros(0))]
        )
        sol = local_ratio_gap(inst)
        assert sol.assignment[0] == []
