"""Per-tour budget policies."""

import pytest

from repro.energy.battery import Battery
from repro.energy.budget import (
    BudgetPolicy,
    CappedBudgetPolicy,
    FractionBudgetPolicy,
    StoredEnergyBudgetPolicy,
)


@pytest.fixture
def battery():
    return Battery(100.0, 40.0)


def test_stored_energy_policy_returns_full_charge(battery):
    assert StoredEnergyBudgetPolicy().budget(battery, 0) == 40.0


def test_stored_energy_policy_tracks_charge(battery):
    policy = StoredEnergyBudgetPolicy()
    battery.withdraw(15.0)
    assert policy.budget(battery, 1) == pytest.approx(25.0)


def test_fraction_policy(battery):
    assert FractionBudgetPolicy(0.5).budget(battery, 0) == pytest.approx(20.0)


def test_fraction_policy_bounds():
    with pytest.raises(ValueError):
        FractionBudgetPolicy(1.5)
    with pytest.raises(ValueError):
        FractionBudgetPolicy(-0.1)


def test_fraction_zero_means_no_budget(battery):
    assert FractionBudgetPolicy(0.0).budget(battery, 0) == 0.0


def test_capped_policy_caps(battery):
    assert CappedBudgetPolicy(10.0).budget(battery, 0) == 10.0


def test_capped_policy_below_cap(battery):
    assert CappedBudgetPolicy(70.0).budget(battery, 0) == 40.0


def test_capped_policy_requires_positive_cap():
    with pytest.raises(ValueError):
        CappedBudgetPolicy(0.0)


def test_all_satisfy_protocol(battery):
    for policy in (
        StoredEnergyBudgetPolicy(),
        FractionBudgetPolicy(0.3),
        CappedBudgetPolicy(5.0),
    ):
        assert isinstance(policy, BudgetPolicy)
        assert policy.budget(battery, 0) >= 0.0
