"""Knapsack solvers: correctness, guarantees, cross-validation."""

import itertools

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.knapsack import (
    KnapsackResult,
    knapsack_branch_and_bound,
    knapsack_few_weights,
    knapsack_fptas,
    knapsack_greedy,
    solve_knapsack,
)

ALL_SOLVERS = [
    knapsack_greedy,
    knapsack_few_weights,
    knapsack_branch_and_bound,
    knapsack_fptas,
]
EXACT_SOLVERS = [knapsack_few_weights, knapsack_branch_and_bound]


def brute_force(profits, weights, capacity):
    """Reference optimum by subset enumeration."""
    n = len(profits)
    best = 0.0
    for mask in range(1 << n):
        w = sum(weights[k] for k in range(n) if mask >> k & 1)
        if w <= capacity + 1e-12:
            p = sum(profits[k] for k in range(n) if mask >> k & 1)
            best = max(best, p)
    return best


def check_result(result, profits, weights, capacity):
    """Selected set is consistent with the reported totals and feasible."""
    assert result.weight <= capacity + 1e-9
    assert result.profit == pytest.approx(
        sum(profits[k] for k in result.selected)
    )
    assert result.weight == pytest.approx(
        sum(weights[k] for k in result.selected)
    )
    assert len(set(result.selected)) == len(result.selected)


@pytest.mark.parametrize("solver", ALL_SOLVERS)
class TestCommonBehaviour:
    def test_empty_items(self, solver):
        result = solver(np.zeros(0), np.zeros(0), 5.0)
        assert result == KnapsackResult.empty()

    def test_nothing_fits(self, solver):
        result = solver(np.array([10.0]), np.array([7.0]), 5.0)
        assert result.selected == ()

    def test_all_fit(self, solver):
        result = solver(np.array([1.0, 2.0]), np.array([1.0, 1.0]), 10.0)
        assert set(result.selected) == {0, 1}

    def test_nonpositive_profits_ignored(self, solver):
        result = solver(np.array([-5.0, 0.0, 3.0]), np.array([1.0, 1.0, 1.0]), 10.0)
        assert result.selected == (2,)

    def test_zero_capacity(self, solver):
        result = solver(np.array([3.0]), np.array([1.0]), 0.0)
        assert result.selected == ()

    def test_zero_weight_items_taken(self, solver):
        result = solver(np.array([3.0, 4.0]), np.array([0.0, 10.0]), 1.0)
        assert 0 in result.selected

    def test_mismatched_shapes_rejected(self, solver):
        with pytest.raises(ValueError):
            solver(np.ones(2), np.ones(3), 1.0)

    def test_negative_weight_rejected(self, solver):
        with pytest.raises(ValueError):
            solver(np.ones(2), np.array([1.0, -1.0]), 1.0)

    def test_result_consistency_random(self, solver):
        rng = np.random.default_rng(0)
        for _ in range(20):
            n = int(rng.integers(1, 12))
            profits = rng.uniform(0.1, 10.0, n)
            weights = rng.choice([0.17, 0.22, 0.30, 0.33], n)
            capacity = float(rng.uniform(0.1, weights.sum()))
            result = solver(profits, weights, capacity)
            check_result(result, profits, weights, capacity)


@pytest.mark.parametrize("solver", EXACT_SOLVERS)
class TestExactSolvers:
    def test_matches_brute_force_random(self, solver):
        rng = np.random.default_rng(1)
        for _ in range(40):
            n = int(rng.integers(1, 12))
            profits = rng.uniform(0.1, 10.0, n)
            weights = rng.choice([1.0, 2.0, 3.0, 5.0], n)
            capacity = float(rng.uniform(0.5, weights.sum()))
            result = solver(profits, weights, capacity)
            assert result.profit == pytest.approx(
                brute_force(profits, weights, capacity)
            )

    def test_classic_instance(self, solver):
        # Not solvable by pure greedy: greedy-by-density picks item 0.
        profits = np.array([60.0, 100.0, 120.0])
        weights = np.array([10.0, 20.0, 30.0])
        result = solver(profits, weights, 50.0)
        assert result.profit == pytest.approx(220.0)
        assert set(result.selected) == {1, 2}


class TestGreedy:
    def test_half_approximation_guarantee(self):
        rng = np.random.default_rng(2)
        for _ in range(60):
            n = int(rng.integers(1, 12))
            profits = rng.uniform(0.1, 10.0, n)
            weights = rng.uniform(0.1, 5.0, n)
            capacity = float(rng.uniform(0.2, weights.sum()))
            opt = brute_force(profits, weights, capacity)
            got = knapsack_greedy(profits, weights, capacity).profit
            assert got >= opt / 2.0 - 1e-9

    def test_best_single_item_fallback(self):
        # Density greedy alone would take the small items (profit 2);
        # the single large item is worth more.
        profits = np.array([1.0, 1.0, 1.5])
        weights = np.array([1.0, 1.0, 2.0])
        result = knapsack_greedy(profits, weights, 2.0)
        assert result.profit == pytest.approx(2.0)  # two small beat 1.5
        result2 = knapsack_greedy(np.array([1.0, 10.0]), np.array([0.1, 2.0]), 2.0)
        assert result2.profit == pytest.approx(10.0)


class TestFewWeights:
    def test_single_weight_class(self):
        profits = np.array([5.0, 9.0, 1.0, 7.0])
        weights = np.full(4, 2.0)
        result = knapsack_few_weights(profits, weights, 4.5)  # afford 2
        assert result.profit == pytest.approx(16.0)
        assert set(result.selected) == {1, 3}

    def test_enumeration_guard(self):
        rng = np.random.default_rng(3)
        n = 60
        profits = rng.uniform(1, 10, n)
        weights = rng.uniform(0.1, 1.0, n)  # ~60 distinct weights
        with pytest.raises(ValueError):
            knapsack_few_weights(profits, weights, 10.0, max_combinations=1000)

    def test_paper_weight_structure(self):
        """Exact on the radio table's 4 weight classes."""
        rng = np.random.default_rng(4)
        for _ in range(20):
            n = int(rng.integers(4, 14))
            weights = rng.choice([0.17, 0.22, 0.30, 0.33], n)
            profits = rng.choice([4800.0, 9600.0, 19200.0, 250000.0], n)
            capacity = float(rng.uniform(0.3, weights.sum()))
            got = knapsack_few_weights(profits, weights, capacity).profit
            assert got == pytest.approx(brute_force(profits, weights, capacity))


class TestBranchAndBound:
    def test_node_limit(self):
        rng = np.random.default_rng(5)
        n = 40
        profits = rng.uniform(1.0, 1.001, n)  # near-ties defeat the bound
        weights = rng.uniform(1.0, 1.001, n)
        with pytest.raises(RuntimeError):
            knapsack_branch_and_bound(profits, weights, n / 2.0, max_nodes=50)


class TestFptas:
    @pytest.mark.parametrize("epsilon", [0.1, 0.3, 0.5])
    def test_approximation_guarantee(self, epsilon):
        rng = np.random.default_rng(6)
        for _ in range(30):
            n = int(rng.integers(1, 12))
            profits = rng.uniform(0.1, 10.0, n)
            weights = rng.uniform(0.1, 5.0, n)
            capacity = float(rng.uniform(0.2, weights.sum()))
            opt = brute_force(profits, weights, capacity)
            got = knapsack_fptas(profits, weights, capacity, epsilon=epsilon).profit
            assert got >= opt / (1.0 + epsilon) - 1e-9

    def test_rejects_bad_epsilon(self):
        with pytest.raises(ValueError):
            knapsack_fptas(np.ones(1), np.ones(1), 1.0, epsilon=0.0)


class TestDispatcher:
    def test_methods_routed(self):
        profits = np.array([60.0, 100.0, 120.0])
        weights = np.array([10.0, 20.0, 30.0])
        for method in ("greedy", "few_weights", "branch_and_bound", "fptas", "auto"):
            result = solve_knapsack(profits, weights, 50.0, method=method)
            check_result(result, profits, weights, 50.0)

    def test_auto_is_exact_on_few_weights(self):
        profits = np.array([60.0, 100.0, 120.0])
        weights = np.array([10.0, 20.0, 30.0])
        assert solve_knapsack(profits, weights, 50.0).profit == pytest.approx(220.0)

    def test_unknown_method_rejected(self):
        with pytest.raises(ValueError):
            solve_knapsack(np.ones(1), np.ones(1), 1.0, method="magic")

    def test_auto_falls_back_on_many_weights(self):
        rng = np.random.default_rng(7)
        n = 100
        profits = rng.uniform(1, 10, n)
        weights = rng.uniform(0.1, 1.0, n)
        result = solve_knapsack(profits, weights, 5.0)
        check_result(result, profits, weights, 5.0)


@given(st.data())
@settings(max_examples=60, deadline=None)
def test_exact_solvers_agree_hypothesis(data):
    """few_weights and branch_and_bound always deliver the same optimum."""
    n = data.draw(st.integers(1, 10))
    weight_pool = data.draw(
        st.lists(st.floats(0.1, 5.0), min_size=1, max_size=3)
    )
    profits = np.array([data.draw(st.floats(0.1, 20.0)) for _ in range(n)])
    weights = np.array([data.draw(st.sampled_from(weight_pool)) for _ in range(n)])
    capacity = data.draw(st.floats(0.0, float(weights.sum()) * 1.2))
    a = knapsack_few_weights(profits, weights, capacity).profit
    b = knapsack_branch_and_bound(profits, weights, capacity).profit
    assert a == pytest.approx(b)
