"""Public-API surface: exports resolve, docstrings exist, version sane.

These meta-tests keep the package release-worthy: everything advertised
in an ``__all__`` must import, and every public callable and class must
carry a docstring (the documentation deliverable, enforced).
"""

import importlib
import inspect
import pkgutil

import pytest

import repro

MODULES = [
    "repro",
    "repro.units",
    "repro.utils",
    "repro.obs",
    "repro.network",
    "repro.energy",
    "repro.core",
    "repro.online",
    "repro.sim",
    "repro.planning",
    "repro.experiments",
    "repro.viz",
    "repro.service",
    "repro.verify",
    "repro.cli",
]


def iter_all_modules():
    seen = []
    for pkg_name in MODULES:
        module = importlib.import_module(pkg_name)
        seen.append(module)
        if hasattr(module, "__path__"):
            for info in pkgutil.iter_modules(module.__path__):
                if info.name == "__main__":
                    continue  # importing it would run the CLI
                seen.append(importlib.import_module(f"{pkg_name}.{info.name}"))
    return {m.__name__: m for m in seen}.values()


def test_version():
    assert repro.__version__.count(".") == 2


@pytest.mark.parametrize("module_name", MODULES)
def test_all_exports_resolve(module_name):
    module = importlib.import_module(module_name)
    for name in getattr(module, "__all__", []):
        assert hasattr(module, name), f"{module_name}.__all__ lists missing {name!r}"


def test_every_module_has_docstring():
    for module in iter_all_modules():
        assert module.__doc__, f"module {module.__name__} lacks a docstring"


def test_every_public_symbol_documented():
    """Every public class/function reachable from an ``__all__`` has a
    docstring, and every public method of those classes does too."""
    missing = []
    for module in iter_all_modules():
        for name in getattr(module, "__all__", []):
            obj = getattr(module, name)
            if inspect.isclass(obj) or inspect.isfunction(obj):
                if not inspect.getdoc(obj):
                    missing.append(f"{module.__name__}.{name}")
                if inspect.isclass(obj):
                    for meth_name, meth in vars(obj).items():
                        if meth_name.startswith("_"):
                            continue
                        if inspect.isfunction(meth) and not inspect.getdoc(meth):
                            missing.append(f"{module.__name__}.{name}.{meth_name}")
    assert not missing, f"undocumented public symbols: {missing}"


def test_quickstart_docstring_example_runs():
    """The example in the package docstring must actually work."""
    from repro import ScenarioConfig, get_algorithm, run_tour

    scenario = ScenarioConfig(num_sensors=30, path_length=1500.0).build(seed=7)
    result = run_tour(scenario, get_algorithm("Offline_Appro"))
    assert result.collected_megabits > 0


def test_paper_algorithm_names_exported():
    from repro.sim.algorithms import ALGORITHMS

    for name in (
        "Offline_Appro",
        "Online_Appro",
        "Offline_MaxMatch",
        "Online_MaxMatch",
        "Online_Appro_Lookahead",
    ):
        assert name in ALGORITHMS
