"""Variable-speed trajectories (the speed-control extension)."""

import numpy as np
import pytest

from repro.core.instance import DataCollectionInstance
from repro.core.offline_appro import offline_appro
from repro.network.geometry import LinearPath
from repro.network.network import SensorNetwork
from repro.network.path import SinkTrajectory
from repro.network.radio import CC2420_LIKE_TABLE
from repro.network.variable_speed import (
    SpeedProfile,
    VariableSpeedTrajectory,
    density_speed_profile,
)
from repro.online.online_appro import online_appro


class TestSpeedProfile:
    def test_constant(self):
        p = SpeedProfile.constant(5.0, 1000.0)
        assert p.travel_time() == pytest.approx(200.0)
        assert p.speed_at(500.0) == 5.0
        assert p.max_speed == 5.0

    def test_two_segments_travel_time(self):
        p = SpeedProfile((0.0, 100.0, 300.0), (10.0, 20.0))
        assert p.travel_time() == pytest.approx(10.0 + 10.0)

    def test_speed_at_boundaries(self):
        p = SpeedProfile((0.0, 100.0, 300.0), (10.0, 20.0))
        assert p.speed_at(0.0) == 10.0
        assert p.speed_at(100.0) == 20.0  # right-open segments
        assert p.speed_at(299.0) == 20.0

    def test_arc_at_time(self):
        p = SpeedProfile((0.0, 100.0, 300.0), (10.0, 20.0))
        assert p.arc_at_time(5.0) == pytest.approx(50.0)
        assert p.arc_at_time(10.0) == pytest.approx(100.0)
        assert p.arc_at_time(15.0) == pytest.approx(200.0)
        assert p.arc_at_time(999.0) == pytest.approx(300.0)  # clipped

    def test_arc_at_time_vectorised(self):
        p = SpeedProfile((0.0, 100.0), (10.0,))
        np.testing.assert_allclose(p.arc_at_time(np.array([0.0, 5.0])), [0.0, 50.0])

    @pytest.mark.parametrize(
        "breaks,speeds",
        [
            ((0.0, 100.0), (10.0, 20.0)),  # length mismatch
            ((5.0, 100.0), (10.0,)),  # doesn't start at 0
            ((0.0, 0.0), (10.0,)),  # not increasing
            ((0.0, 100.0), (0.0,)),  # zero speed
        ],
    )
    def test_invalid(self, breaks, speeds):
        with pytest.raises(ValueError):
            SpeedProfile(breaks, speeds)


class TestVariableSpeedTrajectory:
    def test_constant_profile_matches_sink_trajectory(self):
        """With one segment this must reproduce the paper's model."""
        path = LinearPath(1000.0)
        const = SinkTrajectory(path, 5.0, 1.0)
        var = VariableSpeedTrajectory(path, SpeedProfile.constant(5.0, 1000.0), 1.0)
        assert var.num_slots == const.num_slots
        slots = np.arange(var.num_slots)
        np.testing.assert_allclose(var.arc_at_slot(slots), const.arc_at_slot(slots))
        assert var.gamma(200.0) == const.gamma(200.0)
        xy = np.array([[300.0, 40.0], [800.0, -100.0]])
        assert var.availability(xy, 200.0) == const.availability(xy, 200.0)

    def test_slow_zone_gets_more_slots(self):
        """Halving the speed over a stretch doubles the anchors in it."""
        path = LinearPath(1000.0)
        profile = SpeedProfile((0.0, 400.0, 600.0, 1000.0), (10.0, 5.0, 10.0))
        traj = VariableSpeedTrajectory(path, profile, 1.0)
        arcs = traj.arc_at_slot(np.arange(traj.num_slots))
        in_slow = np.sum((arcs >= 400.0) & (arcs < 600.0))
        in_fast_equal_length = np.sum((arcs >= 0.0) & (arcs < 200.0))
        assert in_slow == pytest.approx(2 * in_fast_equal_length, abs=1)

    def test_gamma_uses_max_speed(self):
        path = LinearPath(1000.0)
        profile = SpeedProfile((0.0, 500.0, 1000.0), (5.0, 20.0))
        traj = VariableSpeedTrajectory(path, profile, 1.0)
        assert traj.gamma(200.0) == 10  # floor(200 / (20*1))

    def test_mean_speed(self):
        path = LinearPath(1000.0)
        profile = SpeedProfile((0.0, 500.0, 1000.0), (5.0, 20.0))
        traj = VariableSpeedTrajectory(path, profile, 1.0)
        assert traj.speed == pytest.approx(1000.0 / 125.0)

    def test_profile_length_mismatch_rejected(self):
        with pytest.raises(ValueError):
            VariableSpeedTrajectory(
                LinearPath(1000.0), SpeedProfile.constant(5.0, 900.0), 1.0
            )

    def test_availability_anchors_in_range(self):
        path = LinearPath(1000.0)
        profile = SpeedProfile((0.0, 300.0, 1000.0), (3.0, 12.0))
        traj = VariableSpeedTrajectory(path, profile, 1.0)
        rng = np.random.default_rng(0)
        xy = np.column_stack([rng.uniform(0, 1000, 20), rng.uniform(-150, 150, 20)])
        for pos, window in zip(xy, traj.availability(xy, 200.0)):
            if window is None:
                continue
            d = traj.distances_to(pos, window.slots())
            assert np.all(d <= 200.0 + 1e-9)
            for outside in (window.start - 1, window.end + 1):
                if 0 <= outside < traj.num_slots:
                    assert traj.distances_to(pos, np.array([outside]))[0] > 200.0 - 1e-9


class TestDensityProfile:
    def test_respects_tour_time(self):
        rng = np.random.default_rng(1)
        x = rng.uniform(0, 10_000.0, 300)
        profile = density_speed_profile(x, 10_000.0, tour_time=2000.0)
        assert profile.travel_time() == pytest.approx(2000.0, rel=0.05)

    def test_slower_in_dense_segments(self):
        x = np.concatenate([np.full(200, 1000.0), np.full(10, 9000.0)])
        profile = density_speed_profile(x, 10_000.0, tour_time=2000.0, num_segments=10)
        assert profile.speed_at(1000.0) < profile.speed_at(9000.0)

    def test_strength_zero_is_constant(self):
        rng = np.random.default_rng(2)
        x = rng.uniform(0, 1000.0, 50)
        profile = density_speed_profile(x, 1000.0, 200.0, strength=0.0)
        assert len(set(profile.speeds)) == 1

    def test_speed_clamps(self):
        x = np.full(500, 100.0)
        profile = density_speed_profile(
            x, 10_000.0, 500.0, min_speed=2.0, max_speed=30.0
        )
        assert min(profile.speeds) >= 2.0
        assert max(profile.speeds) <= 30.0


class TestEndToEnd:
    def test_full_stack_with_variable_speed(self):
        """The whole pipeline — instance, offline and online algorithms —
        works on a variable-speed trajectory, and slowing down in dense
        zones beats constant speed at equal tour time."""
        rng = np.random.default_rng(3)
        path = LinearPath(4000.0)
        # Dense cluster around 1 km, sparse elsewhere.
        x = np.concatenate(
            [rng.uniform(800, 1400, 80), rng.uniform(0, 4000, 20)]
        )
        y = rng.uniform(-150, 150, 100)
        xy = np.column_stack([x, y])
        net = SensorNetwork.build(path, xy, 10_000.0, rng.uniform(0.5, 6.0, 100))
        tour_time = 800.0  # same latency for both plans

        const = SinkTrajectory(path, 4000.0 / tour_time, 1.0)
        planned = VariableSpeedTrajectory(
            path,
            density_speed_profile(x, 4000.0, tour_time, num_segments=16),
            1.0,
        )
        bits = {}
        for name, traj in (("const", const), ("planned", planned)):
            inst = DataCollectionInstance.from_network(
                net, traj, CC2420_LIKE_TABLE, net.budgets()
            )
            alloc = offline_appro(inst)
            alloc.check_feasible(inst)
            bits[name] = alloc.collected_bits(inst)
            online = online_appro(inst, traj.gamma(200.0))
            online.allocation.check_feasible(inst)
        assert bits["planned"] > bits["const"]
