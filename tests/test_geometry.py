"""Path geometry: straight line and polyline."""

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.network.geometry import LinearPath, PiecewiseLinearPath, Point


class TestPoint:
    def test_distance(self):
        assert Point(0, 0).distance_to(Point(3, 4)) == pytest.approx(5.0)

    def test_as_array(self):
        np.testing.assert_array_equal(Point(1.5, -2.0).as_array(), [1.5, -2.0])


class TestLinearPath:
    def test_length(self):
        assert LinearPath(100.0).length == 100.0

    def test_invalid_length(self):
        with pytest.raises(ValueError):
            LinearPath(0.0)

    def test_point_at_scalar(self):
        np.testing.assert_allclose(LinearPath(100.0).point_at(40.0), [40.0, 0.0])

    def test_point_at_clips(self):
        path = LinearPath(100.0)
        np.testing.assert_allclose(path.point_at(-5.0), [0.0, 0.0])
        np.testing.assert_allclose(path.point_at(105.0), [100.0, 0.0])

    def test_point_at_array(self):
        pts = LinearPath(100.0).point_at(np.array([0.0, 50.0]))
        np.testing.assert_allclose(pts, [[0.0, 0.0], [50.0, 0.0]])

    def test_distance_scalar(self):
        assert LinearPath(100.0).distance_from(np.array([3.0, 4.0]), 0.0) == pytest.approx(5.0)

    def test_distance_broadcast_matrix(self):
        path = LinearPath(100.0)
        xy = np.array([[0.0, 3.0], [10.0, 0.0]])
        arcs = np.array([0.0, 10.0])
        d = path.distance_from(xy, arcs)
        assert d.shape == (2, 2)
        assert d[0, 0] == pytest.approx(3.0)
        assert d[1, 1] == pytest.approx(0.0)

    def test_coverage_window_on_axis(self):
        lo, hi = LinearPath(1000.0).coverage_window(np.array([[500.0, 0.0]]), 100.0)
        assert lo[0] == pytest.approx(400.0)
        assert hi[0] == pytest.approx(600.0)

    def test_coverage_window_lateral_offset_shrinks(self):
        lo, hi = LinearPath(1000.0).coverage_window(np.array([[500.0, 60.0]]), 100.0)
        assert hi[0] - lo[0] == pytest.approx(160.0)  # 2*sqrt(100^2-60^2)

    def test_coverage_window_unreachable(self):
        lo, hi = LinearPath(1000.0).coverage_window(np.array([[500.0, 150.0]]), 100.0)
        assert lo[0] > hi[0]

    def test_coverage_window_clipped_at_ends(self):
        lo, hi = LinearPath(1000.0).coverage_window(np.array([[20.0, 0.0]]), 100.0)
        assert lo[0] == pytest.approx(0.0)
        assert hi[0] == pytest.approx(120.0)

    def test_coverage_window_beyond_segment(self):
        # Sensor past the end of the path, out of reach of the segment.
        lo, hi = LinearPath(1000.0).coverage_window(np.array([[1200.0, 0.0]]), 100.0)
        assert lo[0] > hi[0]

    @given(
        st.floats(0.0, 1000.0),
        st.floats(-99.0, 99.0),
        st.floats(10.0, 100.0),
    )
    def test_coverage_window_boundary_distance(self, x, y, radius):
        """Points strictly inside the window are within the radius."""
        path = LinearPath(1000.0)
        lo, hi = path.coverage_window(np.array([[x, y]]), radius)
        if lo[0] <= hi[0]:
            mid = (lo[0] + hi[0]) / 2.0
            assert path.distance_from(np.array([x, y]), mid) <= radius + 1e-6


class TestPiecewiseLinearPath:
    def test_straight_polyline_equals_linear(self):
        poly = PiecewiseLinearPath([(0.0, 0.0), (50.0, 0.0), (100.0, 0.0)])
        line = LinearPath(100.0)
        arcs = np.linspace(0.0, 100.0, 11)
        np.testing.assert_allclose(poly.point_at(arcs), line.point_at(arcs))

    def test_length_of_right_angle(self):
        poly = PiecewiseLinearPath([(0, 0), (3, 0), (3, 4)])
        assert poly.length == pytest.approx(7.0)

    def test_point_on_second_segment(self):
        poly = PiecewiseLinearPath([(0, 0), (3, 0), (3, 4)])
        np.testing.assert_allclose(poly.point_at(5.0), [3.0, 2.0])

    def test_point_clips(self):
        poly = PiecewiseLinearPath([(0, 0), (3, 0)])
        np.testing.assert_allclose(poly.point_at(10.0), [3.0, 0.0])

    def test_requires_two_waypoints(self):
        with pytest.raises(ValueError):
            PiecewiseLinearPath([(0.0, 0.0)])

    def test_collapses_duplicate_waypoints(self):
        """Zero-length segments are collapsed, not rejected — planners
        stitch tours that legitimately share junction vertices."""
        poly = PiecewiseLinearPath([(0, 0), (0, 0), (3, 0), (3, 0), (3, 4)])
        clean = PiecewiseLinearPath([(0, 0), (3, 0), (3, 4)])
        assert poly.length == pytest.approx(clean.length)
        assert poly.waypoints.shape == (3, 2)
        arcs = np.linspace(0.0, poly.length, 17)
        np.testing.assert_allclose(poly.point_at(arcs), clean.point_at(arcs))

    def test_collapses_run_of_duplicates(self):
        poly = PiecewiseLinearPath([(1, 1), (1, 1), (1, 1), (5, 1)])
        assert poly.waypoints.shape == (2, 2)
        assert poly.length == pytest.approx(4.0)

    def test_rejects_all_duplicate_waypoints(self):
        """A polyline with no distinct consecutive points has no arc
        length to parameterise — still an error."""
        with pytest.raises(ValueError):
            PiecewiseLinearPath([(2, 3), (2, 3), (2, 3)])

    def test_duplicate_collapse_keeps_lookup_finite(self):
        """Arc-length lookup near a collapsed vertex must not divide by
        a zero segment length."""
        poly = PiecewiseLinearPath([(0, 0), (10, 0), (10, 0), (10, 10)])
        pts = poly.point_at(np.array([0.0, 10.0, 15.0, 20.0]))
        assert np.all(np.isfinite(pts))
        np.testing.assert_allclose(pts[1], [10.0, 0.0])
        np.testing.assert_allclose(pts[2], [10.0, 5.0])

    def test_distance_from(self):
        poly = PiecewiseLinearPath([(0, 0), (10, 0)])
        assert poly.distance_from(np.array([5.0, 2.0]), 5.0) == pytest.approx(2.0)

    def test_coverage_window_straight_matches_linear(self):
        poly = PiecewiseLinearPath([(0.0, 0.0), (1000.0, 0.0)])
        line = LinearPath(1000.0)
        xy = np.array([[500.0, 30.0], [100.0, 0.0]])
        lo_p, hi_p = poly.coverage_window(xy, 100.0)
        lo_l, hi_l = line.coverage_window(xy, 100.0)
        np.testing.assert_allclose(lo_p, lo_l, atol=1.0)
        np.testing.assert_allclose(hi_p, hi_l, atol=1.0)

    def test_coverage_window_unreachable(self):
        poly = PiecewiseLinearPath([(0, 0), (100, 0)])
        lo, hi = poly.coverage_window(np.array([[50.0, 500.0]]), 100.0)
        assert lo[0] > hi[0]

    def test_waypoints_copy(self):
        wps = [(0.0, 0.0), (1.0, 1.0)]
        poly = PiecewiseLinearPath(wps)
        out = poly.waypoints
        out[0, 0] = 99.0
        np.testing.assert_allclose(poly.waypoints[0], [0.0, 0.0])
