"""ScenarioConfig / Scenario construction."""

import numpy as np
import pytest

from repro.network.radio import CC2420_LIKE_TABLE, FixedPowerTable
from repro.planning import PlannerConfig
from repro.sim.scenario import PAPER_DEFAULTS, Scenario, ScenarioConfig
from repro.utils.validation import UnknownFieldError


class TestConfig:
    def test_paper_defaults(self):
        c = PAPER_DEFAULTS
        assert c.path_length == 10_000.0
        assert c.max_offset == 180.0
        assert c.battery_capacity == 10_000.0
        assert c.panel_area_mm2 == 100.0
        assert c.slot_duration == 1.0
        assert c.sink_speed == 5.0
        assert c.rate_table() is CC2420_LIKE_TABLE

    @pytest.mark.parametrize(
        "field, value",
        [
            ("num_sensors", -1),
            ("path_length", 0.0),
            ("sink_speed", -2.0),
            ("slot_duration", 0.0),
            ("battery_capacity", 0.0),
            ("panel_area_mm2", -1.0),
            ("weather", "hail"),
            ("accumulation_hours", (3.0, 1.0)),
            ("fixed_power", 0.0),
        ],
    )
    def test_invalid_fields_rejected(self, field, value):
        with pytest.raises(ValueError):
            ScenarioConfig(**{field: value})

    def test_with_functional_update(self):
        c = ScenarioConfig(num_sensors=100)
        c2 = c.with_(num_sensors=200, sink_speed=10.0)
        assert c.num_sensors == 100
        assert c2.num_sensors == 200 and c2.sink_speed == 10.0

    def test_fixed_power_table(self):
        c = ScenarioConfig(fixed_power=0.3)
        table = c.rate_table()
        assert isinstance(table, FixedPowerTable)
        assert table.fixed_power == 0.3
        # Rates stay the paper's multi-rate profile.
        assert table.rate_at(10.0) == pytest.approx(250_000.0)

    def test_config_hashable_and_picklable(self):
        import pickle

        c = ScenarioConfig(num_sensors=10)
        assert hash(c) == hash(ScenarioConfig(num_sensors=10))
        assert pickle.loads(pickle.dumps(c)) == c


class TestConfigSerialization:
    def test_round_trip_without_planner(self):
        c = ScenarioConfig(num_sensors=40, fixed_power=0.3)
        doc = c.to_dict()
        assert "planner" not in doc  # historical wire shape preserved
        assert ScenarioConfig.from_dict(doc) == c

    def test_round_trip_with_planner(self):
        c = ScenarioConfig(
            num_sensors=40,
            planner=PlannerConfig(kind="multi_sink", num_sinks=3),
        )
        doc = c.to_dict()
        assert doc["planner"]["kind"] == "multi_sink"
        assert ScenarioConfig.from_dict(doc) == c

    def test_from_dict_rejects_unknown_field_typed(self):
        with pytest.raises(UnknownFieldError) as excinfo:
            ScenarioConfig.from_dict({"num_sensors": 10, "sensros": 10})
        err = excinfo.value
        assert isinstance(err, ValueError)  # still catchable the old way
        assert err.fields == ("sensros",)  # the offending key, by name
        assert "sensros" in str(err)
        assert "num_sensors" in err.known  # message lists valid fields

    def test_from_dict_names_every_unknown_field_sorted(self):
        with pytest.raises(UnknownFieldError) as excinfo:
            ScenarioConfig.from_dict({"zz": 1, "aa": 2})
        assert excinfo.value.fields == ("aa", "zz")

    def test_from_dict_rejects_unknown_planner_field(self):
        with pytest.raises(UnknownFieldError, match="tour_budget"):
            ScenarioConfig.from_dict({"planner": {"tour_budget": 100.0}})

    def test_constructor_coerces_planner_mapping(self):
        c = ScenarioConfig(planner={"kind": "plane_sweep"})
        assert isinstance(c.planner, PlannerConfig)
        assert c.planner.kind == "plane_sweep"

    def test_constructor_rejects_bad_planner(self):
        with pytest.raises(ValueError):
            ScenarioConfig(planner="plane_sweep")


class TestScenario:
    def test_deterministic_per_seed(self):
        c = ScenarioConfig(num_sensors=30, path_length=2000.0)
        a, b = c.build(seed=5), c.build(seed=5)
        np.testing.assert_array_equal(a.network.positions, b.network.positions)
        np.testing.assert_allclose(a.network.charges(), b.network.charges())

    def test_seeds_differ(self):
        c = ScenarioConfig(num_sensors=30, path_length=2000.0)
        a, b = c.build(seed=5), c.build(seed=6)
        assert not np.array_equal(a.network.positions, b.network.positions)

    def test_paper_gamma(self):
        scenario = ScenarioConfig(num_sensors=10).build(seed=0)
        assert scenario.gamma == 40  # floor(200 / (5*1))

    def test_charges_within_battery(self):
        scenario = ScenarioConfig(num_sensors=50, path_length=2000.0).build(seed=1)
        charges = scenario.network.charges()
        assert np.all(charges >= 0)
        assert np.all(charges <= 10_000.0)

    def test_charges_in_calibrated_range(self):
        """U(0,1) h of daylight harvest on a 10x10 panel: <= ~12 J."""
        scenario = ScenarioConfig(num_sensors=200).build(seed=2)
        charges = scenario.network.charges()
        assert charges.max() < 13.0

    def test_weather_none_disables_harvesters(self):
        scenario = ScenarioConfig(num_sensors=10, weather="none").build(seed=0)
        assert all(s.harvester is None for s in scenario.network.sensors)
        assert scenario.network.charges().max() > 0  # still charged

    def test_weather_cloudy_harvests_less_than_sunny(self):
        sunny = ScenarioConfig(num_sensors=1, weather="sunny").build(seed=0)
        cloudy = ScenarioConfig(num_sensors=1, weather="cloudy").build(seed=0)
        window = (10 * 3600.0, 14 * 3600.0)
        assert (
            cloudy.network[0].harvester.energy(*window)
            < sunny.network[0].harvester.energy(*window)
        )

    def test_instance_budget_is_current_charge(self):
        scenario = ScenarioConfig(num_sensors=20, path_length=2000.0).build(seed=3)
        inst = scenario.instance()
        np.testing.assert_allclose(
            [inst.budget_of(i) for i in range(20)], scenario.network.charges()
        )

    def test_lateral_offsets_bounded(self):
        scenario = ScenarioConfig(num_sensors=100).build(seed=4)
        assert np.all(np.abs(scenario.network.positions[:, 1]) <= 180.0)

    def test_no_planner_means_no_plan(self):
        scenario = ScenarioConfig(num_sensors=10, path_length=1000.0).build(seed=0)
        assert scenario.plan is None

    def test_planner_attaches_plan_and_path(self):
        config = ScenarioConfig(
            num_sensors=20,
            path_length=1000.0,
            sink_speed=10.0,
            planner=PlannerConfig(kind="plane_sweep"),
        )
        scenario = config.build(seed=0)
        assert scenario.plan is not None
        assert scenario.plan.kind == "plane_sweep"
        assert scenario.trajectory.path is scenario.plan.path

    def test_fixed_line_planner_keeps_historical_topology(self):
        """Adding the identity planner must not perturb the deployment."""
        plain = ScenarioConfig(num_sensors=30, path_length=2000.0).build(seed=5)
        planned = ScenarioConfig(
            num_sensors=30,
            path_length=2000.0,
            planner=PlannerConfig(kind="fixed_line"),
        ).build(seed=5)
        np.testing.assert_array_equal(
            plain.network.positions, planned.network.positions
        )
        np.testing.assert_allclose(plain.network.charges(), planned.network.charges())
