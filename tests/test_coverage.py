"""Coverage/contention analytics."""

import numpy as np
import pytest

from repro.network.coverage import analyze_coverage
from repro.sim.scenario import ScenarioConfig
from tests.conftest import make_instance


@pytest.fixture
def inst():
    return make_instance(
        8,
        1.0,
        [
            {"window": (0, 3), "rates": [10, 20, 30, 40], "powers": [1] * 4, "budget": 9.0},
            {"window": (2, 5), "rates": [50, 5, 5, 5], "powers": [1] * 4, "budget": 9.0},
            {"window": None, "rates": [], "powers": [], "budget": 9.0},
        ],
    )


def test_competitors_per_slot(inst):
    report = analyze_coverage(inst)
    np.testing.assert_array_equal(
        report.competitors_per_slot, [1, 1, 2, 2, 1, 1, 0, 0]
    )


def test_uncovered_slots(inst):
    report = analyze_coverage(inst)
    np.testing.assert_array_equal(report.uncovered_slots, [6, 7])
    assert report.coverage_fraction == pytest.approx(0.75)


def test_window_sizes(inst):
    report = analyze_coverage(inst)
    np.testing.assert_array_equal(report.window_sizes, [4, 4, 0])


def test_best_rate_envelope(inst):
    report = analyze_coverage(inst)
    np.testing.assert_allclose(
        report.best_rate_per_slot, [10, 20, 50, 40, 5, 5, 0, 0]
    )


def test_throughput_ceiling(inst):
    report = analyze_coverage(inst)
    assert report.throughput_ceiling_bits(2.0) == pytest.approx(2 * 130.0)


def test_contention_stats(inst):
    report = analyze_coverage(inst)
    assert report.mean_contention == pytest.approx(8 / 6)
    assert report.max_contention == 2


def test_density_premise(inst):
    report = analyze_coverage(inst)
    assert report.is_densely_deployed(gamma=2) is False  # slot 6 starts an interval
    assert analyze_coverage(
        make_instance(
            4,
            1.0,
            [{"window": (0, 3), "rates": [1] * 4, "powers": [1] * 4, "budget": 1.0}],
        )
    ).is_densely_deployed(gamma=2)


def test_ceiling_bounds_lp_bound():
    """The energy-free ceiling dominates even the LP relaxation."""
    from repro.core.lp import dcmp_lp_upper_bound

    scenario = ScenarioConfig(num_sensors=40, path_length=2000.0).build(seed=2)
    inst = scenario.instance()
    report = analyze_coverage(inst)
    assert report.throughput_ceiling_bits(inst.slot_duration) >= dcmp_lp_upper_bound(inst)


def test_paper_scenario_is_dense():
    """At the paper's densities the deployment premise holds."""
    scenario = ScenarioConfig(num_sensors=300).build(seed=0)
    inst = scenario.instance()
    report = analyze_coverage(inst)
    assert report.coverage_fraction > 0.99
    assert report.is_densely_deployed(scenario.gamma)
