"""Hypothesis invariants for instance restriction (the online sub-problem).

``DataCollectionInstance.restrict`` is the seam between the offline
truth and what the online framework schedules; these properties pin its
semantics against arbitrary instances and intervals.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.utils.intervals import SlotInterval
from tests.conftest import random_instance

SEEDS = st.integers(0, 100_000)


def draw_interval(data, num_slots):
    a = data.draw(st.integers(0, num_slots - 1))
    b = data.draw(st.integers(a, num_slots - 1))
    return SlotInterval(a, b)


@given(SEEDS, st.data())
@settings(max_examples=40, deadline=None)
def test_restrict_preserves_per_slot_data(seed, data):
    """Every (sub-sensor, sub-slot) pair mirrors its parent exactly."""
    rng = np.random.default_rng(seed)
    inst = random_instance(rng, num_slots=14, num_sensors=5)
    interval = draw_interval(data, inst.num_slots)
    sub, parents = inst.restrict(interval)
    for k, parent in enumerate(parents):
        window = sub.window_of(k)
        assert window is not None
        for local_slot in window:
            global_slot = local_slot + interval.start
            assert sub.profit(k, local_slot) == pytest.approx(
                inst.profit(parent, global_slot)
            )
            assert sub.cost(k, local_slot) == pytest.approx(
                inst.cost(parent, global_slot)
            )


@given(SEEDS, st.data())
@settings(max_examples=40, deadline=None)
def test_restrict_keeps_exactly_overlapping_sensors(seed, data):
    rng = np.random.default_rng(seed)
    inst = random_instance(rng, num_slots=14, num_sensors=5)
    interval = draw_interval(data, inst.num_slots)
    _, parents = inst.restrict(interval)
    expected = [
        i
        for i in range(inst.num_sensors)
        if inst.window_of(i) is not None and inst.window_of(i).overlaps(interval)
    ]
    assert parents == expected


@given(SEEDS, st.data())
@settings(max_examples=30, deadline=None)
def test_restrict_windows_inside_interval(seed, data):
    rng = np.random.default_rng(seed)
    inst = random_instance(rng, num_slots=14, num_sensors=5)
    interval = draw_interval(data, inst.num_slots)
    sub, _ = inst.restrict(interval)
    assert sub.num_slots == len(interval)
    for k in range(sub.num_sensors):
        window = sub.window_of(k)
        assert 0 <= window.start <= window.end < sub.num_slots


@given(SEEDS)
@settings(max_examples=30, deadline=None)
def test_partition_into_intervals_covers_all_pairs(seed):
    """Restricting to a partition of the horizon reproduces every
    (sensor, slot) pair exactly once."""
    rng = np.random.default_rng(seed)
    inst = random_instance(rng, num_slots=12, num_sensors=4)
    gamma = int(rng.integers(1, 6))
    seen = set()
    for start in range(0, inst.num_slots, gamma):
        interval = SlotInterval(start, min(start + gamma, inst.num_slots) - 1)
        sub, parents = inst.restrict(interval)
        for k, parent in enumerate(parents):
            for local_slot in sub.window_of(k):
                pair = (parent, local_slot + interval.start)
                assert pair not in seen
                seen.add(pair)
    expected = {
        (i, j)
        for i in range(inst.num_sensors)
        if inst.window_of(i) is not None
        for j in inst.window_of(i)
    }
    assert seen == expected
