"""Sensitivity to the slot-anchor convention (a documented model choice).

The paper never says where the sink "is" during a slot; we default to
the midpoint.  These tests pin the behaviour of all three conventions
and bound how much the choice matters — if it moved throughput
materially, the reproduction would be fragile.
"""

import numpy as np
import pytest

from repro.core.instance import DataCollectionInstance
from repro.core.offline_appro import offline_appro
from repro.network.geometry import LinearPath
from repro.network.network import SensorNetwork
from repro.network.path import SinkTrajectory
from repro.network.radio import CC2420_LIKE_TABLE


ANCHORS = ["start", "midpoint", "end"]


def build(anchor, seed=0, n=60):
    rng = np.random.default_rng(seed)
    path = LinearPath(3000.0)
    xy = np.column_stack([rng.uniform(0, 3000, n), rng.uniform(-180, 180, n)])
    net = SensorNetwork.build(path, xy, 10_000.0, rng.uniform(0.5, 6.0, n))
    traj = SinkTrajectory(path, 5.0, 1.0, anchor=anchor)
    inst = DataCollectionInstance.from_network(net, traj, CC2420_LIKE_TABLE, net.budgets())
    return inst


@pytest.mark.parametrize("anchor", ANCHORS)
def test_all_anchors_produce_valid_instances(anchor):
    inst = build(anchor)
    offline_appro(inst).check_feasible(inst)


def test_anchor_shifts_windows_by_at_most_one_slot():
    insts = {a: build(a) for a in ANCHORS}
    for i in range(insts["midpoint"].num_sensors):
        windows = {a: insts[a].window_of(i) for a in ANCHORS}
        present = {a: w for a, w in windows.items() if w is not None}
        if len(present) < 2:
            continue
        starts = [w.start for w in present.values()]
        ends = [w.end for w in present.values()]
        assert max(starts) - min(starts) <= 1
        assert max(ends) - min(ends) <= 1


def test_throughput_insensitive_to_anchor():
    """Across seeds, the anchor convention moves mean throughput by a
    couple of percent at most — the model choice is benign."""
    means = {}
    for anchor in ANCHORS:
        vals = [
            offline_appro(build(anchor, seed=s)).collected_bits(build(anchor, seed=s))
            for s in range(4)
        ]
        means[anchor] = np.mean(vals)
    lo, hi = min(means.values()), max(means.values())
    assert hi / lo < 1.10, means
