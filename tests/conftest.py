"""Shared fixtures and instance builders for the test suite."""

from __future__ import annotations

from typing import List, Optional, Sequence

import numpy as np
import pytest

from repro.core.instance import DataCollectionInstance, SensorSlotData
from repro.sim.scenario import ScenarioConfig
from repro.utils.intervals import SlotInterval


def make_instance(
    num_slots: int,
    slot_duration: float,
    sensors: Sequence[dict],
) -> DataCollectionInstance:
    """Build an instance from compact dicts.

    Each sensor dict: ``window=(start, end) | None``, ``rates=[...]``,
    ``powers=[...]`` (aligned with the window) and ``budget=float``.
    """
    data = []
    for s in sensors:
        window = None if s["window"] is None else SlotInterval(*s["window"])
        data.append(
            SensorSlotData(
                window,
                np.asarray(s["rates"], dtype=np.float64),
                np.asarray(s["powers"], dtype=np.float64),
                float(s["budget"]),
            )
        )
    return DataCollectionInstance(num_slots, slot_duration, data)


def random_instance(
    rng: np.random.Generator,
    num_slots: int = 10,
    num_sensors: int = 4,
    max_window: int = 6,
    rate_choices: Sequence[float] = (4800.0, 9600.0, 19200.0, 250000.0),
    power_choices: Sequence[float] = (0.17, 0.22, 0.30, 0.33),
    fixed_power: Optional[float] = None,
    budget_scale: float = 1.0,
) -> DataCollectionInstance:
    """A random small DCMP instance for oracle comparisons.

    Windows are random sub-intervals; rates/powers drawn from the
    paper's level sets (or a single fixed power); budgets scaled so the
    energy constraint binds for roughly half the sensors.
    """
    sensors = []
    for _ in range(num_sensors):
        if rng.random() < 0.1:
            sensors.append({"window": None, "rates": [], "powers": [], "budget": 1.0})
            continue
        start = int(rng.integers(0, num_slots))
        length = int(rng.integers(1, max_window + 1))
        end = min(start + length - 1, num_slots - 1)
        size = end - start + 1
        idx = rng.integers(0, len(rate_choices), size=size)
        rates = np.asarray(rate_choices)[idx]
        if fixed_power is None:
            powers = np.asarray(power_choices)[idx]
        else:
            powers = np.full(size, fixed_power)
        # Budget: enough for a random fraction of the window.
        mean_cost = float(powers.mean())
        budget = budget_scale * mean_cost * rng.uniform(0.3, 1.2) * size
        sensors.append(
            {
                "window": (start, end),
                "rates": rates,
                "powers": powers,
                "budget": budget,
            }
        )
    return make_instance(num_slots, 1.0, sensors)


@pytest.fixture
def rng() -> np.random.Generator:
    return np.random.default_rng(12345)


@pytest.fixture(scope="session")
def small_scenario():
    """A shared small multi-rate scenario (cached per session)."""
    return ScenarioConfig(num_sensors=60, path_length=3000.0).build(seed=77)


@pytest.fixture(scope="session")
def small_fixed_scenario():
    """A shared small fixed-power scenario (cached per session)."""
    return ScenarioConfig(
        num_sensors=60, path_length=3000.0, fixed_power=0.3
    ).build(seed=78)
