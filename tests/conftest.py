"""Shared fixtures and instance builders for the test suite.

Instance generation lives in :mod:`repro.verify.gen` (one generator
shared by the Hypothesis suite and the differential fuzzer); the
``make_instance`` / ``random_instance`` names here are thin aliases
kept for backwards compatibility.

Hypothesis example budgets are profile-driven: ``HYPOTHESIS_PROFILE=ci``
(the CI default) runs 100 examples per property, the default ``dev``
profile runs 25 for fast local iteration.
"""

from __future__ import annotations

import os

import numpy as np
import pytest
from hypothesis import settings

from repro.sim.scenario import ScenarioConfig
from repro.verify.gen import make_instance, random_instance

__all__ = ["make_instance", "random_instance"]

settings.register_profile("dev", max_examples=25, deadline=None)
settings.register_profile("ci", max_examples=100, deadline=None)
settings.load_profile(os.environ.get("HYPOTHESIS_PROFILE", "dev"))


@pytest.fixture
def rng() -> np.random.Generator:
    return np.random.default_rng(12345)


@pytest.fixture(scope="session")
def small_scenario():
    """A shared small multi-rate scenario (cached per session)."""
    return ScenarioConfig(num_sensors=60, path_length=3000.0).build(seed=77)


@pytest.fixture(scope="session")
def small_fixed_scenario():
    """A shared small fixed-power scenario (cached per session)."""
    return ScenarioConfig(
        num_sensors=60, path_length=3000.0, fixed_power=0.3
    ).build(seed=78)
