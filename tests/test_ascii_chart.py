"""ASCII chart rendering."""

import numpy as np
import pytest

from repro.experiments.ascii_chart import ascii_chart


def test_basic_render_contains_glyphs_and_legend():
    out = ascii_chart([1, 2, 3], {"up": [1.0, 2.0, 3.0], "down": [3.0, 2.0, 1.0]})
    assert "o up" in out
    assert "x down" in out
    assert "o" in out.splitlines()[0] + out  # glyphs plotted somewhere


def test_y_axis_ticks_show_extremes():
    out = ascii_chart([0, 1], {"s": [10.0, 50.0]})
    assert "50.00" in out
    assert "10.00" in out


def test_x_axis_shows_range():
    out = ascii_chart([100, 600], {"s": [1.0, 2.0]})
    assert "100" in out
    assert "600" in out


def test_labels_included():
    out = ascii_chart(
        [0, 1], {"s": [0.0, 1.0]}, y_label="Mb", x_label="network size n"
    )
    assert "Mb" in out
    assert "network size n" in out


def test_flat_series_does_not_crash():
    out = ascii_chart([0, 1, 2], {"flat": [5.0, 5.0, 5.0]})
    assert "flat" in out


def test_single_point():
    out = ascii_chart([3], {"dot": [7.0]})
    assert "dot" in out


def test_dimensions_respected():
    out = ascii_chart([0, 1], {"s": [0.0, 1.0]}, width=20, height=6)
    plot_rows = [l for l in out.splitlines() if "|" in l]
    assert len(plot_rows) == 6
    assert all(len(l) <= 11 + 1 + 20 for l in plot_rows)


@pytest.mark.parametrize(
    "kwargs",
    [
        dict(x=[], series={"s": []}),
        dict(x=[1, 2], series={}),
        dict(x=[2, 1], series={"s": [1.0, 2.0]}),
        dict(x=[1, 2], series={"s": [1.0]}),
        dict(x=[1, 2], series={"s": [1.0, 2.0]}, width=4),
    ],
)
def test_invalid_inputs_rejected(kwargs):
    with pytest.raises(ValueError):
        ascii_chart(**kwargs)


def test_monotone_series_monotone_rows():
    """An increasing series' glyph rows decrease (higher = smaller row)."""
    out = ascii_chart([0, 1, 2, 3], {"s": [0.0, 1.0, 2.0, 3.0]}, width=32, height=9)
    rows = {}
    for r, line in enumerate(l for l in out.splitlines() if "|" in l):
        for c, ch in enumerate(line.split("|", 1)[1]):
            if ch == "o":
                rows[c] = r
    cols = sorted(rows)
    assert all(rows[a] >= rows[b] for a, b in zip(cols, cols[1:]))
