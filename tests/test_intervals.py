"""Slot-interval arithmetic, including hypothesis properties."""

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.utils.intervals import SlotInterval, intersect, union_length


def test_length():
    assert len(SlotInterval(3, 7)) == 5


def test_singleton_length():
    assert len(SlotInterval(4, 4)) == 1


def test_invalid_interval_raises():
    with pytest.raises(ValueError):
        SlotInterval(5, 4)


def test_contains():
    iv = SlotInterval(2, 5)
    assert 2 in iv and 5 in iv and 3 in iv
    assert 1 not in iv and 6 not in iv


def test_iter_and_slots_agree():
    iv = SlotInterval(3, 6)
    assert list(iv) == [3, 4, 5, 6]
    np.testing.assert_array_equal(iv.slots(), [3, 4, 5, 6])


def test_intersection_overlap():
    assert SlotInterval(0, 5).intersection(SlotInterval(3, 9)) == SlotInterval(3, 5)


def test_intersection_disjoint_is_none():
    assert SlotInterval(0, 2).intersection(SlotInterval(3, 5)) is None


def test_intersection_touching():
    assert SlotInterval(0, 3).intersection(SlotInterval(3, 5)) == SlotInterval(3, 3)


def test_overlaps():
    assert SlotInterval(0, 3).overlaps(SlotInterval(3, 5))
    assert not SlotInterval(0, 2).overlaps(SlotInterval(3, 5))


def test_clip():
    assert SlotInterval(2, 10).clip(0, 6) == SlotInterval(2, 6)
    assert SlotInterval(2, 10).clip(11, 20) is None


def test_shift():
    assert SlotInterval(2, 4).shift(-2) == SlotInterval(0, 2)


def test_intersect_none_propagates():
    assert intersect(None, SlotInterval(0, 1)) is None
    assert intersect(SlotInterval(0, 1), None) is None
    assert intersect(SlotInterval(0, 3), SlotInterval(2, 5)) == SlotInterval(2, 3)


def test_union_length_disjoint():
    assert union_length([SlotInterval(0, 2), SlotInterval(5, 6)]) == 5


def test_union_length_overlapping():
    assert union_length([SlotInterval(0, 4), SlotInterval(3, 7)]) == 8


def test_union_length_adjacent_merges():
    assert union_length([SlotInterval(0, 2), SlotInterval(3, 4)]) == 5


def test_union_length_empty():
    assert union_length([]) == 0


interval_st = st.tuples(
    st.integers(0, 50), st.integers(0, 50)
).map(lambda t: SlotInterval(min(t), max(t)))


@given(interval_st, interval_st)
def test_intersection_commutative(a, b):
    assert a.intersection(b) == b.intersection(a)


@given(interval_st, interval_st)
def test_intersection_subset(a, b):
    inter = a.intersection(b)
    if inter is not None:
        assert set(inter) == set(a) & set(b)
    else:
        assert not (set(a) & set(b))


@given(st.lists(interval_st, max_size=8))
def test_union_length_matches_set_semantics(intervals):
    expected = len(set().union(*[set(iv) for iv in intervals])) if intervals else 0
    assert union_length(intervals) == expected


@given(interval_st, st.integers(-10, 10))
def test_shift_preserves_length(iv, off):
    if iv.start + off >= 0:
        assert len(iv.shift(off)) == len(iv)
