"""Tour-algorithm adapters and the registry."""

import pytest

from repro.sim.algorithms import (
    ALGORITHMS,
    BaselineAlgorithm,
    OfflineApproAlgorithm,
    OnlineApproAlgorithm,
    get_algorithm,
)
from repro.sim.scenario import ScenarioConfig
from tests.conftest import random_instance


def test_registry_contains_paper_algorithms():
    for name in (
        "Offline_Appro",
        "Online_Appro",
        "Offline_MaxMatch",
        "Online_MaxMatch",
    ):
        assert name in ALGORITHMS
        assert get_algorithm(name).name == name


def test_registry_contains_baselines():
    for variant in ("greedy_profit", "greedy_density", "random", "round_robin"):
        algo = get_algorithm(f"Baseline[{variant}]")
        assert variant in algo.name


def test_unknown_name_rejected():
    with pytest.raises(KeyError, match="choose from"):
        get_algorithm("Does_Not_Exist")


def test_unknown_baseline_variant_rejected():
    with pytest.raises(ValueError):
        BaselineAlgorithm("optimal")


def test_offline_run_returns_no_messages(rng):
    inst = random_instance(rng, num_slots=12, num_sensors=4)
    alloc, messages = OfflineApproAlgorithm().run(inst, 4)
    assert messages is None
    alloc.check_feasible(inst)


def test_online_run_returns_messages(rng):
    inst = random_instance(rng, num_slots=12, num_sensors=4)
    alloc, messages = OnlineApproAlgorithm().run(inst, 4)
    assert messages is not None
    alloc.check_feasible(inst)


def test_every_registered_algorithm_feasible_on_scenario():
    multi = ScenarioConfig(num_sensors=40, path_length=2000.0).build(seed=1)
    fixed = ScenarioConfig(num_sensors=40, path_length=2000.0, fixed_power=0.3).build(seed=1)
    for name in ALGORITHMS:
        scenario = fixed if "MaxMatch" in name else multi
        inst = scenario.instance()
        alloc, _ = get_algorithm(name).run(inst, scenario.gamma)
        alloc.check_feasible(inst)
