"""Integration: predictive budget policy inside the multi-tour simulator."""

import numpy as np
import pytest

from repro.energy.budget import StoredEnergyBudgetPolicy
from repro.energy.harvester import SolarHarvester
from repro.energy.prediction import (
    EwmaPredictor,
    PredictiveBudgetPolicy,
    observe_history,
)
from repro.energy.solar import sunny_profile
from repro.sim.algorithms import get_algorithm
from repro.sim.scenario import ScenarioConfig
from repro.sim.simulator import simulate_tours


def make_policy(config, rest, reserve=2.0):
    harvester = SolarHarvester(sunny_profile(), config.panel_area_mm2)
    predictor = observe_history(EwmaPredictor(num_bins=48), harvester, days=2)
    tour = config.path_length / config.sink_speed
    return PredictiveBudgetPolicy(
        predictor,
        tour_duration=tour + rest,
        start_time=config.start_time,
        reserve=reserve,
    )


@pytest.fixture(scope="module")
def runs():
    config = ScenarioConfig(num_sensors=60, path_length=3000.0)
    rest = 300.0
    out = {}
    for name, policy in (
        ("stored", StoredEnergyBudgetPolicy()),
        ("predictive", make_policy(config, rest)),
    ):
        scenario = config.build(seed=44)
        result = simulate_tours(
            scenario,
            get_algorithm("Offline_Appro"),
            num_tours=6,
            rest_time=rest,
            budget_policy=policy,
        )
        out[name] = (scenario, result)
    return out


def test_both_policies_collect_data(runs):
    for name, (_, result) in runs.items():
        assert result.total_bits() > 0, name


def test_predictive_ends_with_more_energy(runs):
    stored_final = runs["stored"][0].network.charges().mean()
    predictive_final = runs["predictive"][0].network.charges().mean()
    assert predictive_final > stored_final


def test_predictive_budgets_bounded_by_prediction(runs):
    scenario, result = runs["predictive"]
    # Budgets never exceed the (sunny, mid-day) per-tour income bound.
    tour_seconds = scenario.trajectory.tour_duration + 300.0
    peak_power = SolarHarvester(sunny_profile(), 100.0).power(12 * 3600.0)
    income_cap = peak_power * tour_seconds
    for tour in result.tours:
        assert np.all(tour.budgets <= income_cap + 1e-6)


def test_stored_collects_at_least_as_much_early(runs):
    """The greedy policy front-loads: its first-tour haul dominates."""
    stored_first = runs["stored"][1].tours[0].collected_bits
    predictive_first = runs["predictive"][1].tours[0].collected_bits
    assert stored_first >= predictive_first - 1e-6
