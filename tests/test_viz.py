"""SVG rendering."""

import xml.etree.ElementTree as ET

import numpy as np
import pytest

from repro.core.allocation import Allocation
from repro.core.offline_appro import offline_appro
from repro.sim.scenario import ScenarioConfig
from repro.viz.svg import render_allocation_timeline, render_deployment
from tests.conftest import random_instance


@pytest.fixture(scope="module")
def scenario():
    return ScenarioConfig(num_sensors=25, path_length=1500.0).build(seed=8)


class TestDeployment:
    def test_valid_xml(self, scenario):
        svg = render_deployment(scenario.network)
        root = ET.fromstring(svg)
        assert root.tag.endswith("svg")

    def test_one_circle_per_sensor(self, scenario):
        svg = render_deployment(scenario.network)
        assert svg.count('class="sensor"') == 25

    def test_sink_and_range_drawn_when_given(self, scenario):
        svg = render_deployment(scenario.network, sink_arc=700.0)
        assert 'class="sink"' in svg
        assert 'class="radio-range"' in svg

    def test_no_sink_without_arc(self, scenario):
        svg = render_deployment(scenario.network)
        assert 'class="sink"' not in svg

    def test_empty_network(self):
        empty = ScenarioConfig(num_sensors=0, path_length=1500.0).build(seed=0)
        svg = render_deployment(empty.network)
        ET.fromstring(svg)


class TestTimeline:
    def test_valid_xml_and_slots(self, rng):
        inst = random_instance(rng, num_slots=20, num_sensors=5)
        alloc = offline_appro(inst)
        svg = render_allocation_timeline(inst, alloc)
        ET.fromstring(svg)
        assert svg.count('class="slot"') == alloc.num_assigned()

    def test_probe_boundaries(self, rng):
        inst = random_instance(rng, num_slots=20, num_sensors=5)
        alloc = offline_appro(inst)
        svg = render_allocation_timeline(inst, alloc, interval_length=5)
        assert svg.count('class="probe-boundary"') == 4

    def test_legend_lists_rates(self, rng):
        inst = random_instance(rng, num_slots=20, num_sensors=5)
        svg = render_allocation_timeline(inst, offline_appro(inst))
        assert "kbps" in svg

    def test_empty_allocation(self, rng):
        inst = random_instance(rng, num_slots=10, num_sensors=3)
        svg = render_allocation_timeline(inst, Allocation.empty(10))
        ET.fromstring(svg)
        assert svg.count('class="slot"') == 0

    def test_infeasible_allocation_rejected(self, rng):
        inst = random_instance(rng, num_slots=10, num_sensors=3)
        bad = Allocation(np.array([99] + [-1] * 9))
        with pytest.raises(ValueError):
            render_allocation_timeline(inst, bad)
