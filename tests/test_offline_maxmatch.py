"""Offline_MaxMatch: exactness on the fixed-power special case."""

import numpy as np
import pytest

from repro.core.exact import brute_force_optimum
from repro.core.lp import dcmp_lp_upper_bound
from repro.core.offline_maxmatch import (
    build_matching_edges,
    fixed_power_of,
    offline_maxmatch,
)
from tests.conftest import make_instance, random_instance


def fixed_instance(rng, **kwargs):
    return random_instance(rng, fixed_power=0.3, **kwargs)


class TestFixedPowerDetection:
    def test_detects_single_power(self, rng):
        inst = fixed_instance(rng)
        assert fixed_power_of(inst) == pytest.approx(0.3)

    def test_rejects_multi_power(self, rng):
        inst = random_instance(rng, num_slots=10, num_sensors=5)
        with pytest.raises(ValueError, match="single-power"):
            fixed_power_of(inst)

    def test_rejects_empty(self):
        inst = make_instance(
            3, 1.0, [{"window": None, "rates": [], "powers": [], "budget": 1.0}]
        )
        with pytest.raises(ValueError):
            fixed_power_of(inst)

    def test_zero_rate_slots_ignored_for_detection(self):
        # A zero-rate slot's power is irrelevant (never transmitted).
        inst = make_instance(
            2,
            1.0,
            [
                {
                    "window": (0, 1),
                    "rates": [5.0, 0.0],
                    "powers": [0.3, 0.9],
                    "budget": 2.0,
                }
            ],
        )
        assert fixed_power_of(inst) == pytest.approx(0.3)


class TestEdges:
    def test_capacity_formula(self):
        inst = make_instance(
            4,
            1.0,
            [
                {
                    "window": (0, 3),
                    "rates": [1.0, 2.0, 3.0, 4.0],
                    "powers": [0.5] * 4,
                    "budget": 1.6,  # floor(1.6/0.5) = 3
                }
            ],
        )
        edges, caps = build_matching_edges(inst)
        assert caps[0] == 3
        assert len(edges) == 4

    def test_capacity_limited_by_window(self):
        inst = make_instance(
            4,
            1.0,
            [
                {
                    "window": (1, 2),
                    "rates": [1.0, 2.0],
                    "powers": [0.5, 0.5],
                    "budget": 99.0,
                }
            ],
        )
        _, caps = build_matching_edges(inst)
        assert caps[0] == 2

    def test_zero_rate_slots_not_edges(self):
        inst = make_instance(
            3,
            1.0,
            [
                {
                    "window": (0, 2),
                    "rates": [1.0, 0.0, 2.0],
                    "powers": [0.5] * 3,
                    "budget": 9.0,
                }
            ],
        )
        edges, _ = build_matching_edges(inst)
        assert {(u, v) for u, v, _ in edges} == {(0, 0), (0, 2)}


class TestOptimality:
    @pytest.mark.parametrize("engine", ["flow", "lsa", "lp"])
    def test_matches_brute_force(self, rng, engine):
        for _ in range(12):
            inst = fixed_instance(rng, num_slots=8, num_sensors=3, max_window=5)
            opt = brute_force_optimum(inst).collected_bits(inst)
            got = offline_maxmatch(inst, engine=engine).collected_bits(inst)
            assert got == pytest.approx(opt)

    def test_feasible(self, rng):
        for _ in range(10):
            inst = fixed_instance(rng, num_slots=12, num_sensors=5)
            offline_maxmatch(inst).check_feasible(inst)

    def test_close_to_lp_bound(self, rng):
        """For the special case the LP gap comes only from the floor() in
        the affordability cap; with budgets on the 0.3 J grid it is 0."""
        inst = make_instance(
            6,
            1.0,
            [
                {
                    "window": (0, 5),
                    "rates": [1.0, 5.0, 3.0, 2.0, 4.0, 1.0],
                    "powers": [0.3] * 6,
                    "budget": 0.9,
                },
                {
                    "window": (2, 5),
                    "rates": [4.0, 4.0, 4.0, 4.0],
                    "powers": [0.3] * 4,
                    "budget": 0.6,
                },
            ],
        )
        got = offline_maxmatch(inst).collected_bits(inst)
        lp = dcmp_lp_upper_bound(inst)
        assert got == pytest.approx(lp)

    def test_explicit_fixed_power_override(self, rng):
        inst = fixed_instance(rng, num_slots=8, num_sensors=3)
        a = offline_maxmatch(inst).collected_bits(inst)
        b = offline_maxmatch(inst, fixed_power=0.3).collected_bits(inst)
        assert a == pytest.approx(b)

    def test_beats_or_ties_appro(self, rng):
        from repro.core.offline_appro import offline_appro

        for _ in range(10):
            inst = fixed_instance(rng, num_slots=10, num_sensors=4)
            mm = offline_maxmatch(inst).collected_bits(inst)
            ap = offline_appro(inst).collected_bits(inst)
            assert mm >= ap - 1e-9
