"""Planning-service tests: HTTP API, cache, executor, shutdown.

Covers the request lifecycle end to end: a live threaded server on an
ephemeral port (every registered algorithm solved over the wire), the
typed 400/404/429/504 errors, content-addressed caching with in-flight
coalescing, async submit/poll, graceful drain, and a real
``python -m repro serve`` subprocess surviving SIGTERM with in-flight
work.
"""

from __future__ import annotations

import io
import json
import os
import re
import signal
import socket
import subprocess
import sys
import threading
import time
import urllib.error
import urllib.request
from pathlib import Path

import pytest

from repro.obs import MetricsRegistry, configure_access_log
from repro.obs.promexpo import PROMETHEUS_CONTENT_TYPE
from repro.service import (
    JobExecutor,
    JobState,
    JobTimeoutError,
    PlanningService,
    QueueFullError,
    RequestError,
    ResultCache,
    create_server,
    parse_solve_request,
    solve_cache_key,
)
from repro.sim.algorithms import ALGORITHMS, requires_fixed_power

SMALL = {"num_sensors": 30, "path_length": 1500.0}
BIG = {"num_sensors": 300}


def _request(port, path, method="GET", doc=None, raw=None, timeout=120):
    data = None
    if raw is not None:
        data = raw
    elif doc is not None:
        data = json.dumps(doc).encode("utf-8")
    req = urllib.request.Request(
        f"http://127.0.0.1:{port}{path}", data=data, method=method
    )
    try:
        with urllib.request.urlopen(req, timeout=timeout) as resp:
            return resp.status, json.loads(resp.read())
    except urllib.error.HTTPError as err:
        return err.code, json.loads(err.read())


def _solve_body(scenario=SMALL, algorithm="Offline_Appro", seed=7, **extra):
    return {"scenario": dict(scenario), "algorithm": algorithm, "seed": seed, **extra}


def _raw_request(port, path, method="GET", doc=None, headers=None, timeout=120):
    """Like :func:`_request` but returns (status, headers, raw body bytes)."""
    data = json.dumps(doc).encode("utf-8") if doc is not None else None
    req = urllib.request.Request(
        f"http://127.0.0.1:{port}{path}",
        data=data,
        method=method,
        headers=dict(headers or {}),
    )
    try:
        with urllib.request.urlopen(req, timeout=timeout) as resp:
            return resp.status, resp.headers, resp.read()
    except urllib.error.HTTPError as err:
        return err.code, err.headers, err.read()


# ----------------------------------------------------------------------
# picklable helpers for executor-level tests (must be module level)


def _sleep_echo(payload):
    time.sleep(payload.get("sleep", 0.2))
    return dict(payload)


# ----------------------------------------------------------------------


@pytest.fixture(scope="module")
def served():
    """One live server + its service/registry, shared by the fast tests."""
    registry = MetricsRegistry()
    service = PlanningService(
        workers=2, cache_size=64, request_timeout=120.0, registry=registry
    )
    server = create_server(service, port=0)
    thread = threading.Thread(target=server.serve_forever, daemon=True)
    thread.start()
    yield server.server_address[1], service
    server.shutdown()
    service.shutdown()
    thread.join(timeout=10)


class TestEndpoints:
    def test_healthz(self, served):
        port, _ = served
        status, doc = _request(port, "/healthz")
        assert status == 200
        assert doc["status"] == "ok"
        assert doc["queue"]["max_queue"] >= 1
        assert doc["cache"]["max_entries"] == 64
        # Cache effectiveness is part of the liveness document.
        for field in ("hits", "misses", "hit_rate"):
            assert field in doc["cache"]

    def test_algorithms_catalogue(self, served):
        port, _ = served
        status, doc = _request(port, "/v1/algorithms")
        assert status == 200
        names = [entry["name"] for entry in doc["algorithms"]]
        assert names == sorted(ALGORITHMS)
        by_name = {entry["name"]: entry for entry in doc["algorithms"]}
        assert by_name["Offline_MaxMatch"]["requires_fixed_power"] is True
        assert by_name["Offline_Appro"]["requires_fixed_power"] is False

    def test_unknown_route_is_404(self, served):
        port, _ = served
        assert _request(port, "/nope")[0] == 404
        assert _request(port, "/v1/solve", method="GET")[0] == 404

    def test_metrics_snapshot_shape(self, served):
        port, _ = served
        status, doc = _request(port, "/metrics")
        assert status == 200
        assert set(doc) == {"counters", "gauges", "timers"}


class TestSolve:
    @pytest.mark.parametrize("name", sorted(ALGORITHMS))
    def test_solve_every_algorithm(self, served, name):
        port, _ = served
        scenario = dict(SMALL)
        if requires_fixed_power(name):
            scenario["fixed_power"] = 0.3
        status, doc = _request(
            port, "/v1/solve", "POST", _solve_body(scenario, algorithm=name)
        )
        assert status == 200, doc
        assert doc["algorithm"] == name
        assert doc["collected_megabits"] > 0
        assert 0 < doc["lp_bound_fraction"] <= 1.0 + 1e-9
        assert len(doc["schedule"]) == doc["num_slots"]
        assert doc["profile"]["solve_s"] >= 0

    def test_lowercase_alias_resolves(self, served):
        port, _ = served
        status, doc = _request(
            port, "/v1/solve", "POST", _solve_body(algorithm="offline_appro", seed=11)
        )
        assert status == 200
        assert doc["algorithm"] == "Offline_Appro"

    def test_certify_request_attaches_certificate(self, served):
        port, _ = served
        body = _solve_body(seed=31, certify=True)
        status, doc = _request(port, "/v1/solve", "POST", body)
        assert status == 200, doc
        cert = doc["certificate"]
        assert cert["format"] == "repro.certificate"
        assert cert["verdict"] == "pass"
        assert cert["algorithm"] == doc["algorithm"]
        check_names = {c["name"] for c in cert["checks"]}
        assert {"horizon", "windows", "slot_exclusivity", "budgets"} <= check_names
        # The certificate reuses the solver's LP bound rather than re-solving.
        assert cert["lp_fraction"] == pytest.approx(doc["lp_bound_fraction"])

    def test_certify_and_plain_requests_cache_separately(self, served):
        port, _ = served
        plain = _solve_body(seed=32)
        status, doc = _request(port, "/v1/solve", "POST", plain)
        assert status == 200 and "certificate" not in doc
        status, doc = _request(port, "/v1/solve", "POST", dict(plain, certify=True))
        assert status == 200, doc
        assert doc["cached"] is False  # distinct cache key: no stale, cert-less hit
        assert "certificate" in doc

    def test_planner_request_end_to_end(self, served):
        port, _ = served
        body = _solve_body(seed=41, certify=True, planner={"kind": "plane_sweep"})
        status, doc = _request(port, "/v1/solve", "POST", body)
        assert status == 200, doc
        plan = doc["plan"]
        assert plan["kind"] == "plane_sweep"
        assert plan["num_sinks"] == 1
        assert plan["total_tour_length_m"] > 0
        # The echoed scenario carries the merged planner block.
        assert doc["scenario"]["planner"]["kind"] == "plane_sweep"
        # Certification runs unchanged on the designed tour.
        assert doc["certificate"]["verdict"] == "pass"

    def test_multi_sink_request_reports_sinks(self, served):
        port, _ = served
        body = _solve_body(
            seed=42, planner={"kind": "multi_sink", "num_sinks": 2}
        )
        status, doc = _request(port, "/v1/solve", "POST", body)
        assert status == 200, doc
        assert doc["plan"]["kind"] == "multi_sink"
        assert doc["plan"]["num_sinks"] >= 1
        assert len(doc["plan"]["tour_lengths_m"]) == doc["plan"]["num_sinks"]

    def test_planner_and_plain_requests_cache_separately(self, served):
        port, _ = served
        plain = _solve_body(seed=43)
        status, doc = _request(port, "/v1/solve", "POST", plain)
        assert status == 200 and "plan" not in doc
        status, doc = _request(
            port, "/v1/solve", "POST", dict(plain, planner={"kind": "fixed_line"})
        )
        assert status == 200, doc
        assert doc["cached"] is False  # planner extends the cache key
        assert doc["plan"]["kind"] == "fixed_line"

    def test_bad_planner_is_400_naming_the_key(self, served):
        port, _ = served
        body = _solve_body(planner={"kind": "plane_sweep", "spacing": 50.0})
        status, doc = _request(port, "/v1/solve", "POST", body)
        assert status == 400
        assert doc["field"] == "planner"
        assert "spacing" in doc["error"]

    def test_repeat_request_served_from_cache(self, served):
        port, service = served
        body = _solve_body(seed=21)
        first = _request(port, "/v1/solve", "POST", body)
        second = _request(port, "/v1/solve", "POST", body)
        assert first[0] == second[0] == 200
        assert first[1]["cached"] is False
        assert second[1]["cached"] is True
        assert second[1]["collected_bits"] == first[1]["collected_bits"]
        status, metrics = _request(port, "/metrics")
        assert metrics["counters"]["service.cache.hit"] >= 1
        assert service.registry.counter("service.cache.hit") >= 1

    def test_concurrent_identical_requests_share_one_job(self, served):
        port, service = served
        before = service.registry.counter("service.jobs.submitted")
        body = _solve_body({"num_sensors": 150}, seed=33)
        results = []

        def hit():
            results.append(_request(port, "/v1/solve", "POST", body))

        threads = [threading.Thread(target=hit) for _ in range(2)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert [status for status, _ in results] == [200, 200]
        bits = {doc["collected_bits"] for _, doc in results}
        assert len(bits) == 1
        after = service.registry.counter("service.jobs.submitted")
        assert after - before == 1  # coalesced in flight (or cache hit)


class TestValidation:
    def test_malformed_json_is_400(self, served):
        port, _ = served
        status, doc = _request(port, "/v1/solve", "POST", raw=b"{not json")
        assert status == 400
        assert "malformed JSON" in doc["error"]

    def test_unknown_algorithm_400_lists_sorted_choices(self, served):
        port, _ = served
        status, doc = _request(
            port, "/v1/solve", "POST", _solve_body(algorithm="Nope")
        )
        assert status == 400
        assert doc["field"] == "algorithm"
        assert f"choose from {sorted(ALGORITHMS)}" in doc["error"]

    def test_unknown_scenario_field_is_400(self, served):
        port, _ = served
        status, doc = _request(
            port, "/v1/solve", "POST", {"scenario": {"bogus": 1}}
        )
        assert status == 400
        assert doc["field"] == "scenario"
        assert "bogus" in doc["error"]

    def test_out_of_range_sensors_is_400(self, served):
        port, _ = served
        status, doc = _request(
            port, "/v1/solve", "POST", {"scenario": {"num_sensors": -3}}
        )
        assert status == 400
        assert "num_sensors" in doc["error"]

    def test_maxmatch_without_fixed_power_is_400(self, served):
        port, _ = served
        status, doc = _request(
            port, "/v1/solve", "POST", _solve_body(algorithm="Online_MaxMatch")
        )
        assert status == 400
        assert "fixed-power special case" in doc["error"]
        assert "fixed_power" in doc["error"]

    def test_unknown_top_level_field_is_400(self, served):
        port, _ = served
        status, doc = _request(port, "/v1/solve", "POST", {"seeed": 1})
        assert status == 400
        assert "seeed" in doc["error"]

    def test_non_object_body_is_400(self, served):
        port, _ = served
        status, doc = _request(port, "/v1/solve", "POST", raw=b"[1, 2]")
        assert status == 400
        assert "JSON object" in doc["error"]


class TestAsyncJobs:
    def test_submit_poll_roundtrip(self, served):
        port, _ = served
        status, doc = _request(port, "/v1/jobs", "POST", _solve_body(seed=55))
        assert status == 202
        job_id = doc["job_id"]
        deadline = time.monotonic() + 120
        while time.monotonic() < deadline:
            status, doc = _request(port, f"/v1/jobs/{job_id}")
            assert status == 200
            if doc["state"] in ("done", "failed"):
                break
            time.sleep(0.05)
        assert doc["state"] == "done"
        assert doc["error"] is None
        assert doc["result"]["collected_megabits"] > 0

    def test_cached_submit_returns_finished_job(self, served):
        port, _ = served
        body = _solve_body(seed=56)
        assert _request(port, "/v1/solve", "POST", body)[0] == 200
        status, doc = _request(port, "/v1/jobs", "POST", body)
        assert status == 202
        assert doc["cached"] is True
        status, doc = _request(port, f"/v1/jobs/{doc['job_id']}")
        assert doc["state"] == "done"
        assert doc["result"]["collected_megabits"] > 0

    def test_unknown_job_is_404(self, served):
        port, _ = served
        assert _request(port, "/v1/jobs/job-999999")[0] == 404
        assert _request(port, "/v1/jobs/job-999999", method="DELETE")[0] == 404


class TestBackpressure:
    @pytest.fixture()
    def tiny_server(self):
        """workers=1, queue bound 1, 50 ms deadline — saturates easily."""
        registry = MetricsRegistry()
        service = PlanningService(
            workers=1,
            cache_size=8,
            request_timeout=0.05,
            max_queue=1,
            registry=registry,
        )
        server = create_server(service, port=0)
        thread = threading.Thread(target=server.serve_forever, daemon=True)
        thread.start()
        yield server.server_address[1], service
        server.shutdown()
        service.shutdown()  # drains the straggler solve
        thread.join(timeout=10)

    def test_timeout_504_then_queue_full_429(self, tiny_server):
        port, service = tiny_server
        status, doc = _request(port, "/v1/solve", "POST", _solve_body(BIG, seed=1))
        assert status == 504
        assert doc["status"] == 504
        assert "deadline" in doc["error"]
        assert service.registry.counter("service.timeout") >= 1
        # The timed-out solve still occupies the single queue slot.
        status, doc = _request(port, "/v1/jobs", "POST", _solve_body(BIG, seed=2))
        assert status == 429
        assert "queue full" in doc["error"]
        assert service.registry.counter("service.rejected") >= 1


class TestExecutor:
    def test_coalesces_unfinished_jobs_by_key(self):
        executor = JobExecutor(workers=1, max_queue=4)
        try:
            job1, created1 = executor.submit(_sleep_echo, {"sleep": 0.4}, key="k")
            job2, created2 = executor.submit(_sleep_echo, {"sleep": 0.4}, key="k")
            assert created1 and not created2
            assert job1 is job2
            assert executor.wait(job1, timeout=30) == {"sleep": 0.4}
            # Once finished, the key is released and a new job is created.
            job3, created3 = executor.submit(_sleep_echo, {"sleep": 0.0}, key="k")
            assert created3 and job3 is not job1
            executor.wait(job3, timeout=30)
        finally:
            executor.shutdown()

    def test_cancel_queued_job(self):
        executor = JobExecutor(workers=1, max_queue=4)
        try:
            blocker, _ = executor.submit(_sleep_echo, {"sleep": 0.5})
            queued, _ = executor.submit(_sleep_echo, {"sleep": 0.0})
            assert executor.cancel(queued.id) is True
            assert queued.state is JobState.CANCELLED
            with pytest.raises(JobTimeoutError):
                executor.wait(queued, timeout=5)
            executor.wait(blocker, timeout=30)
            assert executor.cancel("job-999999") is False
        finally:
            executor.shutdown()

    def test_wait_timeout_marks_job(self):
        executor = JobExecutor(workers=1, max_queue=4)
        try:
            job, _ = executor.submit(_sleep_echo, {"sleep": 1.0})
            with pytest.raises(JobTimeoutError):
                executor.wait(job, timeout=0.05)
            assert job.state is JobState.TIMEOUT
            assert job.snapshot()["state"] == "timeout"
        finally:
            executor.shutdown()

    def test_rejects_beyond_max_queue(self):
        registry = MetricsRegistry()
        executor = JobExecutor(workers=1, max_queue=1, registry=registry)
        try:
            executor.submit(_sleep_echo, {"sleep": 0.3})
            with pytest.raises(QueueFullError):
                executor.submit(_sleep_echo, {"sleep": 0.0})
            assert registry.counter("service.rejected") == 1
        finally:
            executor.shutdown()

    def test_shutdown_refuses_new_jobs(self):
        executor = JobExecutor(workers=1)
        executor.shutdown()
        with pytest.raises(RuntimeError, match="shut down"):
            executor.submit(_sleep_echo, {})


class TestShutdown:
    def test_graceful_shutdown_drains_in_flight_jobs(self):
        service = PlanningService(
            workers=2, cache_size=8, request_timeout=None, registry=MetricsRegistry()
        )
        ids = [
            service.submit_job(_solve_body(seed=seed))["job_id"] for seed in (61, 62)
        ]
        service.shutdown(drain=True)  # blocks until both solves finish
        for job_id in ids:
            doc = service.job_status(job_id)
            assert doc["state"] == "done"
            assert doc["result"]["collected_megabits"] > 0

    def test_sigterm_drains_and_exits_zero(self, tmp_path):
        src = Path(__file__).resolve().parents[1] / "src"
        env = dict(os.environ)
        env["PYTHONPATH"] = str(src) + os.pathsep + env.get("PYTHONPATH", "")
        with socket.socket() as probe:
            probe.bind(("127.0.0.1", 0))
            port = probe.getsockname()[1]
        proc = subprocess.Popen(
            [
                sys.executable,
                "-m",
                "repro",
                "serve",
                "--port",
                str(port),
                "--workers",
                "1",
            ],
            env=env,
            cwd=tmp_path,
            stdout=subprocess.PIPE,
            stderr=subprocess.STDOUT,
            text=True,
        )
        try:
            deadline = time.monotonic() + 60
            while time.monotonic() < deadline:
                try:
                    if _request(port, "/healthz", timeout=5)[0] == 200:
                        break
                except (urllib.error.URLError, OSError):
                    time.sleep(0.2)
            else:
                pytest.fail("server never became healthy")
            # Put a solve in flight, then SIGTERM mid-job.
            status, doc = _request(port, "/v1/jobs", "POST", _solve_body(BIG, seed=3))
            assert status == 202 and doc["cached"] is False
            proc.send_signal(signal.SIGTERM)
            out, _ = proc.communicate(timeout=120)
        finally:
            if proc.poll() is None:
                proc.kill()
                proc.communicate()
        assert proc.returncode == 0, out
        assert "shut down cleanly (in-flight jobs drained)" in out


def _wait_for_log_lines(stream, needle, timeout=10.0):
    """Access lines are written after the response is sent — poll briefly."""
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        lines = [l for l in stream.getvalue().splitlines() if needle in l]
        if lines:
            return lines
        time.sleep(0.02)
    return [l for l in stream.getvalue().splitlines() if needle in l]


class TestTelemetry:
    """Request IDs, access logs, Prometheus exposition, merged metrics."""

    def test_every_response_carries_a_request_id(self, served):
        port, _ = served
        status, headers, _ = _raw_request(port, "/healthz")
        assert status == 200
        rid = headers["X-Request-Id"]
        assert rid and len(rid) == 32
        # Errors carry one too.
        status, headers, _ = _raw_request(port, "/nope")
        assert status == 404
        assert headers["X-Request-Id"]

    def test_inbound_request_id_echoed_and_in_access_log(self, served):
        port, _ = served
        stream = io.StringIO()
        configure_access_log(stream=stream)
        try:
            status, headers, body = _raw_request(
                port,
                "/v1/solve",
                "POST",
                _solve_body(seed=71),
                headers={"X-Request-Id": "test-rid-71"},
            )
        finally:
            lines = _wait_for_log_lines(stream, "test-rid-71")
            configure_access_log(stream=io.StringIO())
        assert status == 200
        assert headers["X-Request-Id"] == "test-rid-71"
        entries = [json.loads(line) for line in lines]
        [entry] = [e for e in entries if e["request_id"] == "test-rid-71"]
        assert entry["method"] == "POST"
        assert entry["path"] == "/v1/solve"
        assert entry["status"] == 200
        assert entry["duration_ms"] > 0
        assert entry["cached"] in (True, False)
        if not entry["cached"]:
            assert entry["job_id"].startswith("job-")

    def test_suspicious_inbound_request_id_is_replaced(self, served):
        port, _ = served
        status, headers, _ = _raw_request(
            port, "/healthz", headers={"X-Request-Id": "bad id\twith spaces"}
        )
        assert status == 200
        assert headers["X-Request-Id"] != "bad id\twith spaces"
        assert len(headers["X-Request-Id"]) == 32

    def test_prometheus_round_trip_after_solve(self, served):
        port, _ = served
        assert _request(port, "/v1/solve", "POST", _solve_body(seed=72))[0] == 200
        status, headers, body = _raw_request(port, "/metrics?format=prometheus")
        assert status == 200
        assert headers["Content-Type"] == PROMETHEUS_CONTENT_TYPE
        text = body.decode("utf-8")
        assert "repro_knapsack_solve_seconds" in text
        assert "repro_service_http_requests_total" in text
        assert "repro_service_queue_depth" in text
        assert "# TYPE repro_knapsack_solve_seconds summary" in text
        # Internal merge bookkeeping must not leak odd sample lines.
        for line in text.splitlines():
            assert line.startswith(("#", "repro_")), line

    def test_metrics_accept_header_negotiation(self, served):
        port, _ = served
        status, headers, body = _raw_request(
            port, "/metrics", headers={"Accept": "text/plain"}
        )
        assert status == 200
        assert headers["Content-Type"] == PROMETHEUS_CONTENT_TYPE
        # Default (no Accept preference) stays JSON — the pre-PR contract.
        status, headers, body = _raw_request(port, "/metrics")
        assert headers["Content-Type"].startswith("application/json")
        assert set(json.loads(body)) == {"counters", "gauges", "timers"}
        # Explicit ?format=json under a text Accept still yields JSON.
        status, headers, _ = _raw_request(
            port, "/metrics?format=json", headers={"Accept": "text/plain"}
        )
        assert headers["Content-Type"].startswith("application/json")

    def test_worker_solver_metrics_merged_into_parent(self, served):
        port, service = served
        assert _request(port, "/v1/solve", "POST", _solve_body(seed=73))[0] == 200
        status, doc = _request(port, "/metrics")
        assert status == 200
        assert doc["counters"]["knapsack.calls"] > 0
        assert doc["timers"]["knapsack.solve"]["count"] > 0
        assert service.registry.timer_stats("tour.total").count > 0

    def test_per_endpoint_timers_and_status_counters(self, served):
        port, service = served
        assert _request(port, "/healthz")[0] == 200
        registry = service.registry
        assert registry.timer_stats("service.http.healthz").count >= 1
        assert registry.timer_stats("service.http.solve").count >= 1
        assert registry.counter("service.http.requests") >= 2
        assert registry.counter("service.http.status[200]") >= 2
        assert registry.counter("service.http.status[404]") >= 1

    def test_healthz_reports_uptime_and_queue_depth(self, served):
        port, service = served
        status, doc = _request(port, "/healthz")
        assert status == 200
        assert doc["uptime_s"] >= 0.0
        assert doc["queue_depth"] == doc["queue"]["active"]
        # All solves above have drained by now; the gauge tracks that.
        assert service.registry.gauge("service.queue.depth") == 0.0

    def test_solve_response_has_no_internal_keys(self, served):
        port, _ = served
        status, doc = _request(port, "/v1/solve", "POST", _solve_body(seed=74))
        assert status == 200
        assert "worker_metrics" not in doc
        assert "trace_events" not in doc


class TestTraceCapture:
    @pytest.fixture()
    def traced_server(self, tmp_path):
        """A server persisting a trace for *every* request (threshold 0)."""
        registry = MetricsRegistry()
        service = PlanningService(
            workers=1,
            cache_size=8,
            request_timeout=120.0,
            registry=registry,
            trace_threshold=0.0,
            trace_dir=str(tmp_path / "traces"),
        )
        server = create_server(service, port=0)
        thread = threading.Thread(target=server.serve_forever, daemon=True)
        thread.start()
        yield server.server_address[1], service, tmp_path / "traces"
        server.shutdown()
        service.shutdown()
        thread.join(timeout=10)

    def test_slow_request_writes_chrome_trace(self, traced_server):
        port, service, trace_dir = traced_server
        stream = io.StringIO()
        configure_access_log(stream=stream)
        try:
            status, headers, body = _raw_request(
                port,
                "/v1/solve",
                "POST",
                _solve_body(seed=81),
                headers={"X-Request-Id": "traced-81"},
            )
        finally:
            lines = _wait_for_log_lines(stream, "traced-81")
            configure_access_log(stream=io.StringIO())
        assert status == 200
        trace_path = trace_dir / "traced-81.trace.json"
        assert trace_path.exists()
        doc = json.loads(trace_path.read_text(encoding="utf-8"))
        events = doc["traceEvents"]
        assert events and all(e["ph"] == "X" for e in events)
        assert {"tour", "tour.solve"} <= {e["name"] for e in events}
        # The folded stacks land next to the Chrome trace.
        folded_path = trace_dir / "traced-81.folded"
        assert folded_path.exists()
        folded_lines = folded_path.read_text(encoding="utf-8").splitlines()
        assert folded_lines
        for line in folded_lines:
            assert re.match(r"^\S+(?:;\S+)* \d+$", line), line
        assert any(line.startswith("solve") for line in folded_lines)
        # The access-log line points at both persisted artifacts.
        [entry] = [json.loads(l) for l in lines if "traced-81" in l]
        assert entry["trace_path"] == str(trace_path)
        assert entry["folded_path"] == str(folded_path)
        # Client body still clean of internal keys.
        client_doc = json.loads(body)
        assert "trace_events" not in client_doc
        assert "folded_stacks" not in client_doc

    def test_cached_solve_does_not_rewrite_trace(self, traced_server):
        port, service, trace_dir = traced_server
        body = _solve_body(seed=82)
        assert _request(port, "/v1/solve", "POST", body)[0] == 200
        before = set(trace_dir.iterdir())
        status, doc = _request(port, "/v1/solve", "POST", body)
        assert status == 200 and doc["cached"] is True
        assert set(trace_dir.iterdir()) == before


class TestSchema:
    def test_defaults_and_canonicalisation(self):
        request = parse_solve_request({"scenario": {}, "algorithm": "online_appro"})
        assert request.algorithm == "Online_Appro"
        assert request.seed is None
        assert request.config.num_sensors == 300

    def test_payload_is_plain_data(self):
        request = parse_solve_request(_solve_body())
        payload = request.payload()
        assert json.loads(json.dumps(payload)) == payload

    def test_sensor_cap_is_400(self):
        with pytest.raises(RequestError) as err:
            parse_solve_request(
                {"scenario": {"num_sensors": 100}}, max_sensors=50
            )
        assert err.value.status == 400
        assert "out of range" in err.value.message

    def test_bad_seed(self):
        with pytest.raises(RequestError, match="seed"):
            parse_solve_request({"seed": "seven"})
        with pytest.raises(RequestError, match="seed"):
            parse_solve_request({"seed": True})

    def test_certify_defaults_false_and_must_be_bool(self):
        assert parse_solve_request({"scenario": {}}).certify is False
        assert parse_solve_request({"scenario": {}, "certify": True}).certify is True
        with pytest.raises(RequestError, match="certify"):
            parse_solve_request({"certify": "yes"})
        with pytest.raises(RequestError, match="certify"):
            parse_solve_request({"certify": 1})

    def test_error_body_shape(self):
        err = RequestError("boom", status=413, field="scenario")
        assert err.to_dict() == {"error": "boom", "status": 413, "field": "scenario"}

    def test_top_level_planner_merges_into_scenario(self):
        request = parse_solve_request(
            {"scenario": {"num_sensors": 10}, "planner": {"kind": "plane_sweep"}}
        )
        assert request.config.planner is not None
        assert request.config.planner.kind == "plane_sweep"
        # And the payload ships it inside the scenario document.
        assert request.payload()["scenario"]["planner"]["kind"] == "plane_sweep"

    def test_planner_inside_scenario_also_accepted(self):
        request = parse_solve_request(
            {"scenario": {"planner": {"kind": "multi_sink", "num_sinks": 3}}}
        )
        assert request.config.planner.num_sinks == 3

    def test_planner_in_both_places_is_400(self):
        with pytest.raises(RequestError, match="pick one"):
            parse_solve_request(
                {
                    "scenario": {"planner": {"kind": "fixed_line"}},
                    "planner": {"kind": "plane_sweep"},
                }
            )

    def test_planner_must_be_object(self):
        with pytest.raises(RequestError, match="planner"):
            parse_solve_request({"scenario": {}, "planner": "plane_sweep"})

    def test_unknown_planner_field_is_400_naming_it(self):
        with pytest.raises(RequestError, match="pacing") as err:
            parse_solve_request({"scenario": {}, "planner": {"pacing": 3}})
        assert err.value.field == "planner"


class TestCache:
    def test_lru_eviction_order(self):
        cache = ResultCache(max_entries=2, registry=MetricsRegistry())
        cache.put("a", {"v": 1})
        cache.put("b", {"v": 2})
        assert cache.get("a") == {"v": 1}  # refreshes "a"
        cache.put("c", {"v": 3})  # evicts "b"
        assert cache.get("b") is None
        assert cache.get("a") == {"v": 1}
        assert cache.get("c") == {"v": 3}
        assert len(cache) == 2

    def test_hit_miss_counters(self):
        registry = MetricsRegistry()
        cache = ResultCache(max_entries=4, registry=registry)
        assert cache.get("x") is None
        cache.put("x", {"v": 1})
        assert cache.get("x") == {"v": 1}
        assert registry.counter("service.cache.miss") == 1
        assert registry.counter("service.cache.hit") == 1

    def test_zero_capacity_disables_storage(self):
        cache = ResultCache(max_entries=0, registry=MetricsRegistry())
        cache.put("x", {"v": 1})
        assert cache.get("x") is None

    def test_stats_report_cumulative_hits_misses_and_rate(self):
        cache = ResultCache(max_entries=4, registry=MetricsRegistry())
        assert cache.stats() == {
            "entries": 0,
            "max_entries": 4,
            "hits": 0,
            "misses": 0,
            "hit_rate": 0.0,
        }
        cache.get("x")  # miss
        cache.put("x", {"v": 1})
        cache.get("x")  # hit
        cache.get("x")  # hit
        cache.get("y")  # miss
        stats = cache.stats()
        assert stats["hits"] == 2
        assert stats["misses"] == 2
        assert stats["hit_rate"] == pytest.approx(0.5)

    def test_key_is_field_order_independent(self):
        a = solve_cache_key({"num_sensors": 10, "sink_speed": 5.0}, "A", 1)
        b = solve_cache_key({"sink_speed": 5.0, "num_sensors": 10}, "A", 1)
        c = solve_cache_key({"num_sensors": 11, "sink_speed": 5.0}, "A", 1)
        assert a == b
        assert a != c
        assert a != solve_cache_key({"num_sensors": 10, "sink_speed": 5.0}, "B", 1)
        assert a != solve_cache_key({"num_sensors": 10, "sink_speed": 5.0}, "A", 2)

    def test_certify_flag_changes_key_backward_compatibly(self):
        scenario = {"num_sensors": 10}
        plain = solve_cache_key(scenario, "A", 1)
        # certify=False must hash identically to the historical 3-arg key.
        assert solve_cache_key(scenario, "A", 1, certify=False) == plain
        assert solve_cache_key(scenario, "A", 1, certify=True) != plain

    def test_planner_extends_key_backward_compatibly(self):
        """Planner-less requests keep their historical cache keys; any
        planner (even the identity ``fixed_line``) hashes differently."""
        plain = parse_solve_request({"scenario": {"num_sensors": 10}, "seed": 1})
        planned = parse_solve_request(
            {
                "scenario": {"num_sensors": 10},
                "planner": {"kind": "fixed_line"},
                "seed": 1,
            }
        )
        # to_dict() omits the absent planner → key == historical key.
        assert plain.cache_key() == solve_cache_key(
            plain.config.to_dict(), "Offline_Appro", 1, certify=False
        )
        assert "planner" not in plain.config.to_dict()
        assert planned.cache_key() != plain.cache_key()

    def test_distinct_planners_hash_distinctly(self):
        keys = {
            parse_solve_request(
                {"scenario": {"num_sensors": 10}, "planner": {"kind": kind}, "seed": 1}
            ).cache_key()
            for kind in ("fixed_line", "plane_sweep", "multi_sink")
        }
        assert len(keys) == 3


class TestSolveBatch:
    """``POST /v1/solve-batch``: one job, per-scenario results, shared
    instance preparation, cache interoperability with ``/v1/solve``."""

    def test_batch_solves_every_item_and_shares_cache(self, served):
        port, service = served
        names = [
            "Offline_Appro",
            "Baseline[greedy_profit]",
            "Baseline[round_robin]",
        ]
        body = {"items": [_solve_body(seed=61, algorithm=n) for n in names]}
        status, doc = _request(port, "/v1/solve-batch", "POST", body)
        assert status == 200, doc
        assert doc["items"] == 3
        assert doc["cache_hits"] == 0
        assert [r["algorithm"] for r in doc["results"]] == names
        for result in doc["results"]:
            assert result["cached"] is False
            assert result["collected_megabits"] > 0
            assert len(result["schedule"]) == result["num_slots"]
        # Replay: every item now comes from the cache.
        status, doc = _request(port, "/v1/solve-batch", "POST", body)
        assert status == 200
        assert doc["cache_hits"] == 3
        assert all(r["cached"] for r in doc["results"])

    def test_batch_results_match_single_solves(self, served):
        port, _ = served
        item = _solve_body(seed=62)
        status, single = _request(port, "/v1/solve", "POST", item)
        assert status == 200
        status, doc = _request(port, "/v1/solve-batch", "POST", {"items": [item]})
        assert status == 200
        batched = doc["results"][0]
        # The single solve populated the cache; the batch reuses it, and
        # the payloads agree except for the cache marker.
        assert batched["cached"] is True
        assert batched["collected_bits"] == single["collected_bits"]
        assert batched["schedule"] == single["schedule"]

    def test_batch_populates_cache_for_single_solves(self, served):
        port, _ = served
        item = _solve_body(seed=63, algorithm="Baseline[greedy_density]")
        status, doc = _request(port, "/v1/solve-batch", "POST", {"items": [item]})
        assert status == 200
        assert doc["cache_hits"] == 0
        status, single = _request(port, "/v1/solve", "POST", item)
        assert status == 200
        assert single["cached"] is True
        assert single["collected_bits"] == doc["results"][0]["collected_bits"]

    def test_batch_item_certification(self, served):
        port, _ = served
        item = _solve_body(seed=64, certify=True)
        status, doc = _request(port, "/v1/solve-batch", "POST", {"items": [item]})
        assert status == 200, doc
        cert = doc["results"][0]["certificate"]
        assert cert["format"] == "repro.certificate"
        assert cert["verdict"] == "pass"

    def test_mixed_seeds_group_separately(self, served):
        port, _ = served
        body = {
            "items": [
                _solve_body(seed=65),
                _solve_body(seed=66),
                _solve_body(seed=65, algorithm="Baseline[greedy_profit]"),
            ]
        }
        status, doc = _request(port, "/v1/solve-batch", "POST", body)
        assert status == 200
        a, b, c = doc["results"]
        assert a["seed"] == 65 and b["seed"] == 66 and c["seed"] == 65
        # Different seeds genuinely produce different deployments.
        assert a["collected_bits"] != b["collected_bits"]

    def test_validation_errors_name_the_item(self, served):
        port, _ = served
        status, doc = _request(
            port,
            "/v1/solve-batch",
            "POST",
            {"items": [_solve_body(), {"algorithm": "Nope", "scenario": dict(SMALL)}]},
        )
        assert status == 400
        assert "items[1]" in doc["error"]

    def test_batch_body_shape_errors(self, served):
        port, _ = served
        assert _request(port, "/v1/solve-batch", "POST", [1, 2])[0] == 400
        assert _request(port, "/v1/solve-batch", "POST", {"items": []})[0] == 400
        status, doc = _request(
            port, "/v1/solve-batch", "POST", {"items": [_solve_body()], "bogus": 1}
        )
        assert status == 400
        assert "bogus" in doc["error"]

    def test_batch_size_cap(self, served):
        port, service = served
        too_many = {
            "items": [
                _solve_body(seed=s) for s in range(service.max_batch_items + 1)
            ]
        }
        status, doc = _request(port, "/v1/solve-batch", "POST", too_many)
        assert status == 400
        assert "items" in doc["error"]
