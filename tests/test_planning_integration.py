"""End-to-end planning: designed tours through solve, certify, fuzz, CLI.

The acceptance bar for the planning subsystem: every paper algorithm
must produce a *valid certificate* on both plane-sweep and multi-sink
tours, the differential checker must stay quiet on planner-derived
instances, and ``repro plan`` must be byte-identical across runs.
"""

import json

import pytest

from repro.cli import main
from repro.planning import PlannerConfig
from repro.sim.algorithms import get_algorithm, requires_fixed_power
from repro.sim.scenario import ScenarioConfig
from repro.sim.simulator import run_tour
from repro.verify import check_instance

PAPER_ALGORITHMS = (
    "Offline_Appro",
    "Online_Appro",
    "Offline_MaxMatch",
    "Online_MaxMatch",
)


def _config(kind, **overrides):
    planner = PlannerConfig(kind=kind, **overrides.pop("planner_kwargs", {}))
    defaults = dict(
        num_sensors=25,
        path_length=800.0,
        max_offset=200.0,
        sink_speed=10.0,
        planner=planner,
    )
    defaults.update(overrides)
    return ScenarioConfig(**defaults)


class TestCertifyOnDesignedTours:
    @pytest.mark.parametrize("kind", ["plane_sweep", "multi_sink"])
    @pytest.mark.parametrize("algorithm", PAPER_ALGORITHMS)
    def test_certificate_passes(self, kind, algorithm):
        fixed_power = 0.3 if requires_fixed_power(algorithm) else None
        config = _config(kind, fixed_power=fixed_power)
        scenario = config.build(seed=3)
        assert scenario.plan is not None and scenario.plan.kind == kind
        result = run_tour(scenario, get_algorithm(algorithm), certify=True)
        assert result.certificate is not None
        assert result.certificate.verdict == "pass", result.certificate.failures()
        assert result.collected_megabits > 0

    def test_fixed_line_planner_matches_plannerless_solve(self):
        planned = _config("fixed_line").build(seed=5)
        plain = ScenarioConfig(
            num_sensors=25, path_length=800.0, max_offset=200.0, sink_speed=10.0
        ).build(seed=5)
        a = run_tour(planned, get_algorithm("Offline_Appro"), mutate=False)
        b = run_tour(plain, get_algorithm("Offline_Appro"), mutate=False)
        assert a.collected_megabits == b.collected_megabits


class TestDifferentialCheckOnDesignedTours:
    @pytest.mark.parametrize("kind", ["plane_sweep", "multi_sink"])
    def test_fuzz_relations_hold(self, kind):
        scenario = _config(kind, fixed_power=0.3).build(seed=3)
        instance = scenario.instance()
        findings = check_instance(instance, scenario.gamma)
        assert findings == [], [(f.kind, f.check, f.detail) for f in findings]


class TestPlanCli:
    ARGS = [
        "plan",
        "--sensors", "30",
        "--field-width", "1000",
        "--field-height", "250",
        "--speed", "10",
        "--seed", "11",
    ]

    def test_json_byte_identical_across_runs(self, tmp_path):
        out1, out2 = tmp_path / "a.json", tmp_path / "b.json"
        assert main(self.ARGS + ["--json", str(out1)]) == 0
        assert main(self.ARGS + ["--json", str(out2)]) == 0
        assert out1.read_bytes() == out2.read_bytes()
        doc = json.loads(out1.read_text())
        assert doc["format"] == "repro.plan"
        assert doc["plan"]["kind"] == "plane_sweep"
        assert len(doc["sensors"]) == 30

    def test_map_rendered_to_stdout(self, capsys):
        assert main(self.ARGS) == 0
        out = capsys.readouterr().out
        assert "#" in out
        assert "tour" in out

    def test_json_dash_writes_stdout_without_map(self, capsys):
        assert main(self.ARGS + ["--json", "-"]) == 0
        out = capsys.readouterr().out
        doc = json.loads(out)  # pure JSON — no ASCII map mixed in
        assert doc["plan"]["kind"] == "plane_sweep"

    def test_multi_sink_flags(self, capsys):
        code = main(
            [
                "plan",
                "--planner", "multi_sink",
                "--sinks", "3",
                "--deployment", "clustered",
                "--sensors", "40",
                "--field-width", "1500",
                "--field-height", "250",
                "--speed", "10",
                "--seed", "4",
                "--json", "-",
            ]
        )
        assert code == 0
        doc = json.loads(capsys.readouterr().out)
        assert doc["plan"]["kind"] == "multi_sink"
        assert doc["plan"]["num_sinks"] == 3
        assert len(doc["plan"]["assignment"]) == 40

    def test_infeasible_budget_is_clean_error(self, capsys):
        code = main(self.ARGS + ["--budget", "50"])
        assert code != 0
