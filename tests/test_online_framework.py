"""Online framework (Algorithm 2): locality, messages, Lemma 1."""

import numpy as np
import pytest

from repro.core.offline_appro import offline_appro
from repro.online.framework import run_online
from repro.online.online_appro import GapIntervalScheduler, online_appro
from repro.sim.scenario import ScenarioConfig
from tests.conftest import make_instance, random_instance


class TestMechanics:
    def test_invalid_gamma(self, rng):
        inst = random_instance(rng)
        with pytest.raises(ValueError):
            run_online(inst, 0, GapIntervalScheduler())

    def test_tour_allocation_feasible(self, rng):
        for _ in range(10):
            inst = random_instance(rng, num_slots=20, num_sensors=6, max_window=8)
            result = run_online(inst, 5, GapIntervalScheduler())
            result.allocation.check_feasible(inst)

    def test_residual_budgets_nonnegative(self, rng):
        for _ in range(10):
            inst = random_instance(rng, num_slots=20, num_sensors=6)
            result = run_online(inst, 4, GapIntervalScheduler())
            assert np.all(result.residual_budgets >= -1e-9)

    def test_energy_accounting_consistent(self, rng):
        inst = random_instance(rng, num_slots=20, num_sensors=6)
        result = run_online(inst, 4, GapIntervalScheduler())
        spent = result.allocation.energy_spent(inst)
        budgets = np.array([inst.budget_of(i) for i in range(inst.num_sensors)])
        np.testing.assert_allclose(
            result.residual_budgets, budgets - spent, atol=1e-9
        )

    def test_collected_bits_matches_allocation(self, rng):
        inst = random_instance(rng, num_slots=20, num_sensors=6)
        result = run_online(inst, 4, GapIntervalScheduler())
        assert result.collected_bits == pytest.approx(
            result.allocation.collected_bits(inst)
        )

    def test_intervals_partition_horizon(self, rng):
        inst = random_instance(rng, num_slots=23, num_sensors=4)
        result = run_online(inst, 5, GapIntervalScheduler())
        covered = []
        for rec in result.intervals:
            covered.extend(range(rec.interval.start, rec.interval.end + 1))
        assert covered == list(range(23))

    def test_interval_bits_sum_to_total(self, rng):
        inst = random_instance(rng, num_slots=20, num_sensors=6)
        result = run_online(inst, 4, GapIntervalScheduler())
        assert sum(r.collected_bits for r in result.intervals) == pytest.approx(
            result.collected_bits
        )

    def test_registration_requires_probe_reception(self):
        """A sensor whose window misses every interval-start slot never
        registers (and never transmits), even though it has slots."""
        inst = make_instance(
            8,
            1.0,
            # Window [1,3]: probes land at slots 0 and 4 -> never heard.
            [{"window": (1, 3), "rates": [5.0] * 3, "powers": [1.0] * 3, "budget": 9.0}],
        )
        result = run_online(inst, 4, GapIntervalScheduler())
        assert result.collected_bits == 0.0
        assert all(len(r.registered) == 0 for r in result.intervals)

    def test_boundary_slots_lost_vs_offline(self):
        """A sensor heard only by the second probe loses its early slots
        — the concrete locality cost of the online framework."""
        inst = make_instance(
            8,
            1.0,
            # Window [2,5]: probe at 0 not heard, probe at 4 heard ->
            # only slots 4,5 usable online; offline uses 2..5.
            [{"window": (2, 5), "rates": [5.0] * 4, "powers": [1.0] * 4, "budget": 99.0}],
        )
        online = run_online(inst, 4, GapIntervalScheduler())
        offline = offline_appro(inst)
        assert online.collected_bits == pytest.approx(10.0)
        assert offline.collected_bits(inst) == pytest.approx(20.0)


class TestLemma1AndMessages:
    def test_lemma1_on_paper_geometry(self):
        """Random paper-default topologies: each sensor spans <= 2
        consecutive probe intervals."""
        for seed in range(5):
            scenario = ScenarioConfig(num_sensors=80, path_length=4000.0).build(seed=seed)
            inst = scenario.instance()
            result = online_appro(inst, scenario.gamma)
            regs = result.registrations_per_sensor()
            assert regs.max() <= 2
            # And the registered intervals are consecutive.
            per_sensor = {}
            for rec in result.intervals:
                for s in rec.registered:
                    per_sensor.setdefault(s, []).append(rec.index)
            for intervals in per_sensor.values():
                if len(intervals) == 2:
                    assert intervals[1] - intervals[0] == 1

    def test_sum_nj_at_most_2n(self):
        for seed in range(5):
            scenario = ScenarioConfig(num_sensors=60, path_length=4000.0).build(seed=seed)
            inst = scenario.instance()
            result = online_appro(inst, scenario.gamma)
            total = sum(len(rec.registered) for rec in result.intervals)
            assert total <= 2 * inst.num_sensors

    def test_messages_linear_in_n(self):
        """Per-sensor protocol receptions are bounded by a small constant
        (paper: four sink messages + two acks)."""
        scenario = ScenarioConfig(num_sensors=100, path_length=5000.0).build(seed=3)
        inst = scenario.instance()
        result = online_appro(inst, scenario.gamma)
        log = result.messages
        assert log.max_receptions_per_sensor() <= 6
        n = inst.num_sensors
        # acks <= 2n; sink broadcasts <= 3 per interval.
        assert log.summary()["acks"] <= 2 * n
        assert log.total_messages <= 2 * n + 3 * len(result.intervals)

    def test_message_summary_keys(self):
        scenario = ScenarioConfig(num_sensors=30, path_length=2000.0).build(seed=1)
        inst = scenario.instance()
        result = online_appro(inst, scenario.gamma)
        summary = result.messages.summary()
        assert summary["probe_broadcasts"] == len(result.intervals)
        assert summary["schedule_broadcasts"] <= summary["probe_broadcasts"]
        assert summary["finish_broadcasts"] == summary["schedule_broadcasts"]
