"""Hypothesis property suite over randomly generated DCMP instances.

These are the repository-wide invariants from DESIGN.md §7, driven by
arbitrary (not hand-picked) instances, plus the metamorphic relations
the differential fuzzer checks (slot-order reversal, sensor relabeling,
uniform profit/energy scaling).

Example counts are governed by the Hypothesis profiles registered in
``tests/conftest.py`` — ``HYPOTHESIS_PROFILE=ci`` runs 100 examples per
property, the default ``dev`` profile 25.
"""

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.core.baselines import greedy_by_profit, random_allocation
from repro.core.exact import brute_force_optimum
from repro.core.lp import dcmp_lp_upper_bound
from repro.core.offline_appro import offline_appro
from repro.core.offline_maxmatch import offline_maxmatch
from repro.online.online_appro import online_appro
from repro.online.online_maxmatch import online_maxmatch
from repro.verify.fuzz import (
    relabel_sensors,
    reverse_slots,
    scale_energy,
    scale_profits,
)
from tests.conftest import random_instance

SEEDS = st.integers(0, 100_000)


@given(SEEDS)
def test_every_algorithm_feasible(seed):
    rng = np.random.default_rng(seed)
    inst = random_instance(rng, num_slots=12, num_sensors=5)
    gamma = int(rng.integers(1, 7))
    offline_appro(inst).check_feasible(inst)
    greedy_by_profit(inst).check_feasible(inst)
    random_allocation(inst, seed).check_feasible(inst)
    online_appro(inst, gamma).allocation.check_feasible(inst)


@given(SEEDS)
def test_fixed_power_algorithms_feasible_and_ordered(seed):
    rng = np.random.default_rng(seed)
    inst = random_instance(rng, num_slots=12, num_sensors=5, fixed_power=0.3)
    gamma = int(rng.integers(1, 7))
    mm = offline_maxmatch(inst)
    mm.check_feasible(inst)
    om = online_maxmatch(inst, gamma)
    om.allocation.check_feasible(inst)
    # Offline optimum dominates the online variant.
    assert om.collected_bits <= mm.collected_bits(inst) + 1e-9


@given(SEEDS)
def test_offline_appro_half_optimal(seed):
    rng = np.random.default_rng(seed)
    inst = random_instance(rng, num_slots=7, num_sensors=3, max_window=4)
    opt = brute_force_optimum(inst).collected_bits(inst)
    got = offline_appro(inst).collected_bits(inst)
    assert got >= opt / 2.0 - 1e-9


@given(SEEDS)
def test_maxmatch_exactly_optimal(seed):
    rng = np.random.default_rng(seed)
    inst = random_instance(rng, num_slots=7, num_sensors=3, max_window=4, fixed_power=0.3)
    opt = brute_force_optimum(inst).collected_bits(inst)
    got = offline_maxmatch(inst).collected_bits(inst)
    assert got == pytest.approx(opt)


@given(SEEDS)
def test_lp_bound_dominates_exact_optimum(seed):
    rng = np.random.default_rng(seed)
    inst = random_instance(rng, num_slots=7, num_sensors=3, max_window=4)
    opt = brute_force_optimum(inst).collected_bits(inst)
    assert dcmp_lp_upper_bound(inst) >= opt - 1e-6


@given(SEEDS, st.integers(1, 8))
def test_online_energy_conservation(seed, gamma):
    """Online residual budgets = initial budgets - spend, all >= 0."""
    rng = np.random.default_rng(seed)
    inst = random_instance(rng, num_slots=14, num_sensors=5)
    result = online_appro(inst, gamma)
    budgets = np.array([inst.budget_of(i) for i in range(inst.num_sensors)])
    spent = result.allocation.energy_spent(inst)
    np.testing.assert_allclose(result.residual_budgets, budgets - spent, atol=1e-9)
    assert np.all(result.residual_budgets >= -1e-9)


@given(SEEDS)
def test_determinism_of_all_deterministic_algorithms(seed):
    rng1 = np.random.default_rng(seed)
    rng2 = np.random.default_rng(seed)
    inst1 = random_instance(rng1, num_slots=10, num_sensors=4)
    inst2 = random_instance(rng2, num_slots=10, num_sensors=4)
    a1 = offline_appro(inst1)
    a2 = offline_appro(inst2)
    np.testing.assert_array_equal(a1.slot_owner, a2.slot_owner)


# ----------------------------------------------------------------------
# Metamorphic relations (shared with the differential fuzzer)
# ----------------------------------------------------------------------
@given(SEEDS)
def test_metamorphic_reversal_preserves_feasibility_and_bound(seed):
    """Mirroring the time axis changes neither the LP bound nor the
    solvers' feasibility."""
    rng = np.random.default_rng(seed)
    inst = random_instance(rng, num_slots=10, num_sensors=4)
    reversed_inst = reverse_slots(inst)
    assert dcmp_lp_upper_bound(reversed_inst) == pytest.approx(
        dcmp_lp_upper_bound(inst), rel=1e-7, abs=1e-6
    )
    offline_appro(reversed_inst).check_feasible(reversed_inst)
    # Reversing twice is the identity.
    twice = reverse_slots(reversed_inst)
    for a, b in zip(inst.sensors, twice.sensors):
        assert a.window == b.window
        np.testing.assert_array_equal(a.rates, b.rates)


@given(SEEDS)
def test_metamorphic_relabeling_is_pure_renaming(seed):
    """Permuting sensor ids changes no aggregate quantity."""
    rng = np.random.default_rng(seed)
    inst = random_instance(rng, num_slots=8, num_sensors=4, max_window=4)
    relabeled = relabel_sensors(inst)
    assert dcmp_lp_upper_bound(relabeled) == pytest.approx(
        dcmp_lp_upper_bound(inst), rel=1e-7, abs=1e-6
    )
    assert brute_force_optimum(relabeled).collected_bits(relabeled) == pytest.approx(
        brute_force_optimum(inst).collected_bits(inst)
    )
    offline_appro(relabeled).check_feasible(relabeled)


@given(SEEDS)
def test_metamorphic_profit_scaling_scales_objectives(seed):
    """Scaling every rate by c scales the LP bound and the exact
    optimum by exactly c; feasibility is untouched."""
    rng = np.random.default_rng(seed)
    inst = random_instance(rng, num_slots=8, num_sensors=3, max_window=4, fixed_power=0.3)
    scaled = scale_profits(inst, 3.0)
    assert dcmp_lp_upper_bound(scaled) == pytest.approx(
        3.0 * dcmp_lp_upper_bound(inst), rel=1e-7, abs=1e-6
    )
    assert offline_maxmatch(scaled).collected_bits(scaled) == pytest.approx(
        3.0 * offline_maxmatch(inst).collected_bits(inst), rel=1e-7, abs=1e-6
    )


@given(SEEDS)
def test_metamorphic_energy_scaling_is_invariant(seed):
    """Jointly scaling powers and budgets leaves the feasible set — and
    hence the LP bound and exact objective — unchanged."""
    rng = np.random.default_rng(seed)
    inst = random_instance(rng, num_slots=8, num_sensors=3, max_window=4, fixed_power=0.3)
    scaled = scale_energy(inst, 2.0)
    assert dcmp_lp_upper_bound(scaled) == pytest.approx(
        dcmp_lp_upper_bound(inst), rel=1e-7, abs=1e-6
    )
    assert offline_maxmatch(scaled).collected_bits(scaled) == pytest.approx(
        offline_maxmatch(inst).collected_bits(inst), rel=1e-7, abs=1e-6
    )
    offline_appro(scaled).check_feasible(scaled)
