#!/usr/bin/env python
"""Quickstart: one topology, all four paper algorithms, plus the LP bound.

Builds the paper's default scenario (10 km highway, 300 solar-powered
sensors, 200 m radio range, 1 s slots, 5 m/s sink), runs
``Offline_Appro``, ``Online_Appro`` and — switching to the fixed-power
radio — ``Offline_MaxMatch`` / ``Online_MaxMatch``, and reports each
algorithm's throughput as a fraction of the LP upper bound on the
optimum.

Run:  python examples/quickstart.py
"""

from __future__ import annotations

from repro import ScenarioConfig, dcmp_lp_upper_bound, get_algorithm, run_tour


def compare(config: ScenarioConfig, algorithms: list[str], seed: int = 42) -> None:
    """Run every algorithm on one shared topology and print a table."""
    scenario = config.build(seed=seed)
    instance = scenario.instance()
    bound_bits = dcmp_lp_upper_bound(instance)
    print(
        f"  topology: n={config.num_sensors}, T={scenario.trajectory.num_slots} slots, "
        f"gamma={scenario.gamma}, LP bound={bound_bits / 1e6:.2f} Mb"
    )
    for name in algorithms:
        result = run_tour(scenario, get_algorithm(name), mutate=False)
        frac = result.collected_bits / bound_bits if bound_bits else 0.0
        msg = (
            f", {result.messages.total_messages} protocol messages"
            if result.messages
            else ""
        )
        print(
            f"  {name:<18} {result.collected_megabits:8.2f} Mb "
            f"({frac:6.1%} of LP bound, {result.wall_time * 1e3:6.1f} ms{msg})"
        )


def main() -> None:
    print("== Multi-rate radio (the general problem) ==")
    compare(
        ScenarioConfig(num_sensors=300),
        ["Offline_Appro", "Online_Appro", "Baseline[greedy_profit]", "Baseline[random]"],
    )
    print()
    print("== Fixed 300 mW power (the Section-VI special case) ==")
    compare(
        ScenarioConfig(num_sensors=300, fixed_power=0.3),
        ["Offline_MaxMatch", "Online_MaxMatch", "Offline_Appro", "Online_Appro"],
    )


if __name__ == "__main__":
    main()
