#!/usr/bin/env python
"""Render a scenario and its schedule as standalone SVG files.

Produces two browser-ready figures without any plotting dependency:

* ``deployment.svg`` — the highway from above, sensors shaded by stored
  energy, the sink's radio disc at mid-tour;
* ``timeline.svg`` — the tour's slot allocation (colour = rate band,
  red lines = probe-interval boundaries of the online run).

Run:  python examples/visualize.py [output_dir]
"""

from __future__ import annotations

import sys
from pathlib import Path

from repro import ScenarioConfig, online_appro
from repro.viz.svg import render_allocation_timeline, render_deployment


def main() -> None:
    out_dir = Path(sys.argv[1]) if len(sys.argv) > 1 else Path("out")
    out_dir.mkdir(exist_ok=True)

    scenario = ScenarioConfig(num_sensors=200, path_length=4000.0).build(seed=12)
    instance = scenario.instance()
    result = online_appro(instance, scenario.gamma)

    deployment = render_deployment(
        scenario.network,
        sink_arc=scenario.config.path_length / 2,
        transmission_range=scenario.rate_table.max_range,
    )
    timeline = render_allocation_timeline(
        instance, result.allocation, interval_length=scenario.gamma
    )

    (out_dir / "deployment.svg").write_text(deployment)
    (out_dir / "timeline.svg").write_text(timeline)
    print(f"wrote {out_dir / 'deployment.svg'} and {out_dir / 'timeline.svg'}")
    print(
        f"tour: {result.collected_bits / 1e6:.2f} Mb over "
        f"{result.allocation.num_assigned()}/{instance.num_slots} busy slots"
    )


if __name__ == "__main__":
    main()
