#!/usr/bin/env python
"""The speed/latency trade-off the paper's introduction motivates.

"The faster the mobile sink travels, the shorter the duration per tour
will be, resulting in a shorter delay on data delivery … although a
higher speed leads to a shorter delay, it will result in a less amount
of data collected per tour too."  This example quantifies both sides:
for sink speeds from 2 to 40 m/s it reports the data latency (tour
duration) and the per-tour throughput, plus the derived collection
*rate* (Mb per hour of patrol), showing where the sweet spot sits for a
given deployment.

Run:  python examples/speed_latency_tradeoff.py
"""

from __future__ import annotations

import numpy as np

from repro import ScenarioConfig, get_algorithm, run_tour


def main() -> None:
    speeds = [2.0, 5.0, 10.0, 15.0, 20.0, 30.0, 40.0]
    repeats = 3
    print(
        f"{'speed':>6} {'latency':>9} {'throughput':>12} {'rate':>12}"
        f"   (n=300, tau=1 s, Online_Appro, mean of {repeats} topologies)"
    )
    for speed in speeds:
        config = ScenarioConfig(num_sensors=300, sink_speed=speed)
        tour_minutes = config.path_length / speed / 60.0
        values = []
        for seed in range(repeats):
            scenario = config.build(seed=seed)
            result = run_tour(scenario, get_algorithm("Online_Appro"), mutate=False)
            values.append(result.collected_megabits)
        mb = float(np.mean(values))
        rate_per_hour = mb / (tour_minutes / 60.0)
        print(
            f"{speed:>4.0f} m/s {tour_minutes:>7.1f} min {mb:>9.2f} Mb "
            f"{rate_per_hour:>9.2f} Mb/h"
        )
    print(
        "\nLatency falls linearly with speed while per-tour data falls "
        "almost as fast: collection *rate* is nearly flat, so the speed "
        "choice is governed by the application's freshness requirement, "
        "as the paper argues."
    )


if __name__ == "__main__":
    main()
