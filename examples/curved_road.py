#!/usr/bin/env python
"""Beyond the straight line: a curved interchange with clustered sensors.

The paper assumes a straight path "which can be easily extended to real
scenarios" — this example *is* that extension, built from the public
API's lower-level pieces: a :class:`PiecewiseLinearPath` following an
S-shaped road, a clustered deployment around two interchanges, explicit
battery/harvester assembly, and a direct
:meth:`DataCollectionInstance.from_network` call.

Run:  python examples/curved_road.py
"""

from __future__ import annotations

import numpy as np

from repro import offline_appro, online_appro
from repro.core.instance import DataCollectionInstance
from repro.energy.harvester import SolarHarvester
from repro.energy.solar import sunny_profile
from repro.network.deployment import clustered_deployment
from repro.network.geometry import PiecewiseLinearPath
from repro.network.network import SensorNetwork
from repro.network.path import SinkTrajectory
from repro.network.radio import CC2420_LIKE_TABLE


def main() -> None:
    rng = np.random.default_rng(5)

    # An S-curved road through two interchanges.
    waypoints = [
        (0.0, 0.0),
        (2000.0, 0.0),
        (3500.0, 800.0),
        (5000.0, 800.0),
        (6500.0, 0.0),
        (9000.0, 0.0),
    ]
    path = PiecewiseLinearPath(waypoints)
    print(f"road length: {path.length:.0f} m over {len(waypoints)} waypoints")

    # Sensors cluster around the interchanges (traffic cameras, loops).
    positions = clustered_deployment(
        num_sensors=250,
        path_length=path.length,
        max_offset=150.0,
        num_clusters=2,
        cluster_std=700.0,
        seed=rng,
    )
    # clustered_deployment places points in path-parameter space for the
    # straight-line case; map the longitudinal coordinate onto the curve.
    arc = positions[:, 0]
    on_road = path.point_at(arc)
    normals = rng.uniform(-150.0, 150.0, size=len(arc))
    xy = on_road + np.column_stack([np.zeros_like(normals), normals])

    profile = sunny_profile()
    network = SensorNetwork.build(
        path,
        xy,
        battery_capacity=10_000.0,
        initial_charges=rng.uniform(0.5, 8.0, size=len(arc)),
        harvester_factory=lambda i: SolarHarvester(profile, 100.0),
    )
    trajectory = SinkTrajectory(path, speed=8.0, slot_duration=1.0)
    instance = DataCollectionInstance.from_network(
        network, trajectory, CC2420_LIKE_TABLE, network.budgets()
    )
    reachable = sum(1 for s in instance.sensors if s.window is not None)
    print(f"instance: {instance.num_sensors} sensors ({reachable} reachable), "
          f"T={instance.num_slots} slots")

    offline = offline_appro(instance)
    gamma = trajectory.gamma(CC2420_LIKE_TABLE.max_range)
    online = online_appro(instance, gamma)
    print(f"Offline_Appro: {offline.collected_bits(instance) / 1e6:.2f} Mb")
    print(
        f"Online_Appro : {online.collected_bits / 1e6:.2f} Mb "
        f"({online.messages.total_messages} protocol messages, "
        f"{len(online.intervals)} probe intervals)"
    )


if __name__ == "__main__":
    main()
