#!/usr/bin/env python
"""Energy-neutral operation via harvest prediction (extension).

The paper's budget rule spends *everything stored* each tour — greedy
today, starved tomorrow if the weather turns.  This example warms an
EWMA predictor on two days of (cloudy) history and compares three
budget policies over a long patrol day:

* ``stored``     — the paper's policy (whole store each tour);
* ``fraction``   — a fixed 50 % of the store;
* ``predictive`` — spend what the predicted harvest will replace,
  keeping a 2 J reserve (the Kansal-style energy-neutral point).

Watch the right-hand column: the conservative policies trade day
throughput for end-of-day battery margin — the stored (paper) policy
collects the most but leaves the network nearly drained for the night,
while the predictive policy banks roughly twice the energy for
tomorrow at a single-digit throughput cost.

Run:  python examples/energy_neutral.py
"""

from __future__ import annotations

import numpy as np

from repro import ScenarioConfig, get_algorithm, simulate_tours
from repro.energy.budget import FractionBudgetPolicy, StoredEnergyBudgetPolicy
from repro.energy.harvester import SolarHarvester
from repro.energy.prediction import EwmaPredictor, PredictiveBudgetPolicy, observe_history
from repro.energy.solar import cloudy_profile


def main() -> None:
    config = ScenarioConfig(num_sensors=150, weather="cloudy")
    tour_duration = config.path_length / config.sink_speed
    rest = 600.0

    # Warm the predictor with two days of the same cloudy climate.
    harvester = SolarHarvester(cloudy_profile(seed=0), config.panel_area_mm2)
    predictor = observe_history(EwmaPredictor(num_bins=48, alpha=0.5), harvester, days=2)

    policies = {
        "stored (paper)": StoredEnergyBudgetPolicy(),
        "fraction 50%": FractionBudgetPolicy(0.5),
        "predictive": PredictiveBudgetPolicy(
            predictor,
            tour_duration=tour_duration + rest,
            start_time=config.start_time,
            reserve=2.0,
        ),
    }

    print(f"{'policy':<16} {'day total':>10} {'per-tour min/max':>20} {'final charge':>13}")
    for name, policy in policies.items():
        scenario = config.build(seed=33)  # identical topology each time
        result = simulate_tours(
            scenario,
            get_algorithm("Online_Appro"),
            num_tours=10,
            rest_time=rest,
            budget_policy=policy,
        )
        bits = result.bits_per_tour() / 1e6
        final = float(np.mean(scenario.network.charges()))
        print(
            f"{name:<16} {bits.sum():8.1f} Mb "
            f"{bits.min():8.2f}/{bits.max():<8.2f} Mb {final:10.3f} J"
        )
    print(
        "\nThe paper's policy maximises today's haul but drains the "
        "network; the predictive policy banks ~2x the energy for "
        "tomorrow at a ~9% throughput cost — the perpetual-operation "
        "trade-off made explicit."
    )


if __name__ == "__main__":
    main()
