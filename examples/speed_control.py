#!/usr/bin/env python
"""Speed control: slow down where sensors are dense (extension).

The paper fixes the sink's speed and cites Kansal et al.'s speed
control as the classic way to collect more.  This example plans a
density-aware speed profile with the *same total tour time* (so data
latency is unchanged) and measures what it buys on a highway whose
sensors cluster around two interchanges.

Run:  python examples/speed_control.py
"""

from __future__ import annotations

import numpy as np

from repro import offline_appro
from repro.core.instance import DataCollectionInstance
from repro.network.deployment import clustered_deployment
from repro.network.geometry import LinearPath
from repro.network.path import SinkTrajectory
from repro.network.radio import CC2420_LIKE_TABLE
from repro.network.network import SensorNetwork
from repro.network.variable_speed import VariableSpeedTrajectory, density_speed_profile


def main() -> None:
    rng = np.random.default_rng(13)
    path = LinearPath(10_000.0)
    xy = clustered_deployment(
        300, 10_000.0, 180.0, num_clusters=2, cluster_std=600.0, seed=rng
    )
    net = SensorNetwork.build(
        path, xy, 10_000.0, rng.uniform(0.5, 8.0, 300)
    )
    tour_time = 2000.0  # the latency budget: 33 min, same for all plans

    plans = {
        "constant 5 m/s": SinkTrajectory(path, 10_000.0 / tour_time, 1.0),
    }
    for strength in (0.5, 1.0, 2.0):
        profile = density_speed_profile(
            xy[:, 0], 10_000.0, tour_time, num_segments=25, strength=strength
        )
        plans[f"density-aware (strength={strength})"] = VariableSpeedTrajectory(
            path, profile, 1.0
        )

    print(f"{'plan':<32} {'tour':>8} {'throughput':>12}")
    base = None
    for name, traj in plans.items():
        instance = DataCollectionInstance.from_network(
            net, traj, CC2420_LIKE_TABLE, net.budgets()
        )
        bits = offline_appro(instance).collected_bits(instance)
        base = base or bits
        print(
            f"{name:<32} {traj.tour_duration:>6.0f} s "
            f"{bits / 1e6:>9.2f} Mb ({bits / base - 1.0:+.1%})"
        )
    print(
        "\nSame latency, more data: dwell time migrates from empty road "
        "to the interchanges where the sensors (and their energy) are."
    )


if __name__ == "__main__":
    main()
