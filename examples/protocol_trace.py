#!/usr/bin/env python
"""Inside the online protocol: messages, intervals, and Lemma 1.

Runs one ``Online_MaxMatch`` tour and dissects the distributed
framework's behaviour: per-interval registration counts (``N_j``), the
message ledger against the paper's O(n) bound, the Lemma-1 property
(every sensor registers in at most two consecutive intervals), and how
much throughput the online algorithm loses to probe-boundary effects
versus its offline counterpart.

Run:  python examples/protocol_trace.py
"""

from __future__ import annotations

import numpy as np

from repro import ScenarioConfig, offline_maxmatch, online_maxmatch


def main() -> None:
    config = ScenarioConfig(num_sensors=120, fixed_power=0.3)
    scenario = config.build(seed=21)
    instance = scenario.instance()

    result = online_maxmatch(instance, scenario.gamma)
    offline = offline_maxmatch(instance)

    print(f"tour: T={instance.num_slots} slots, gamma={scenario.gamma}, "
          f"{len(result.intervals)} probe intervals\n")

    print("interval  slots          N_j  assigned  collected")
    for rec in result.intervals[:12]:
        print(
            f"{rec.index:>8}  [{rec.interval.start:>4},{rec.interval.end:>4}] "
            f"{len(rec.registered):>4} {rec.assigned_slots:>9} "
            f"{rec.collected_bits / 1e6:>9.3f} Mb"
        )
    if len(result.intervals) > 12:
        print(f"  ... {len(result.intervals) - 12} more intervals")

    n_j = np.array([len(rec.registered) for rec in result.intervals])
    n = instance.num_sensors
    print(f"\nsum N_j = {n_j.sum()} <= 2n = {2 * n}  (Theorem 3/4 premise)")

    regs = result.registrations_per_sensor()
    print(
        f"registrations per sensor: max {regs.max()} (Lemma 1: <= 2), "
        f"mean {regs.mean():.2f}"
    )

    print("\nmessage ledger:")
    for key, value in result.messages.summary().items():
        print(f"  {key:<20} {value}")
    print(f"  messages per sensor  {result.messages.total_messages / n:.2f}  (O(n) bound)")

    loss = 1.0 - result.collected_bits / offline.collected_bits(instance)
    print(
        f"\nonline vs offline: {result.collected_bits / 1e6:.2f} vs "
        f"{offline.collected_bits(instance) / 1e6:.2f} Mb "
        f"({loss:.1%} lost to probe-boundary locality)"
    )


if __name__ == "__main__":
    main()
