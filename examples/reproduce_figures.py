#!/usr/bin/env python
"""Reproduce all three evaluation figures in one run (reduced scale).

Runs Figures 2–4 at a laptop-friendly scale (3 topologies per point,
n ∈ {100, 300, 600}) and prints the same series tables + ASCII charts
the full harness produces.  For the paper's full methodology use
``python -m repro figN --repeats 50`` or
``REPRO_BENCH_SCALE=full pytest benchmarks/ --benchmark-only``.

Run:  python examples/reproduce_figures.py
"""

from __future__ import annotations

import time

from repro.experiments import fig2, fig3, fig4

SIZES = (100, 300, 600)
REPEATS = 3


def main() -> None:
    for module in (fig2, fig3, fig4):
        t0 = time.perf_counter()
        result = module.run(repeats=REPEATS, sizes=SIZES)
        print(module.report(result))
        print(f"({len(result.records)} records in {time.perf_counter() - t0:.1f} s)")
        print("=" * 72)


if __name__ == "__main__":
    main()
