#!/usr/bin/env python
"""Perpetual operation: a day of patrol tours on harvested energy.

The paper's premise is that harvesting enables *perpetual* operation:
sensors spend energy when the sink passes and recover it from the sun
between passes.  This example drives 12 consecutive tours (a sink
patrolling back and forth from 10:00, ~33 min per tour plus a 10-minute
turnaround) under sunny and partly-cloudy skies and prints the energy
ledger per tour — watch budgets sag under heavy collection and recover
while the sun is high, then fade towards evening.

Run:  python examples/perpetual_operation.py
"""

from __future__ import annotations

import numpy as np

from repro import ScenarioConfig, get_algorithm, simulate_tours


def run_day(weather: str) -> None:
    config = ScenarioConfig(num_sensors=200, weather=weather)
    scenario = config.build(seed=9)
    algorithm = get_algorithm("Online_Appro")
    result = simulate_tours(
        scenario, algorithm, num_tours=12, rest_time=600.0
    )
    print(f"-- weather: {weather} --")
    print(
        f"{'tour':>4} {'start':>7} {'collected':>12} {'spent':>9} "
        f"{'harvested':>10} {'mean budget':>12}"
    )
    tour_len = scenario.trajectory.tour_duration + 600.0
    for tour in result.tours:
        start_s = config.start_time + tour.tour_index * tour_len
        hh, mm = int(start_s // 3600) % 24, int(start_s % 3600) // 60
        print(
            f"{tour.tour_index:>4} {hh:02d}:{mm:02d}   "
            f"{tour.collected_megabits:9.2f} Mb "
            f"{tour.total_energy_spent:8.1f} J "
            f"{tour.total_energy_harvested:9.1f} J "
            f"{float(np.mean(tour.budgets)):11.3f} J"
        )
    summary = result.summary()
    print(
        f"  day total: {summary['total_megabits']:.1f} Mb over "
        f"{result.num_tours} tours; harvested {summary['total_energy_harvested']:.0f} J, "
        f"spent {summary['total_energy_spent']:.0f} J\n"
    )


def main() -> None:
    for weather in ("sunny", "cloudy"):
        run_day(weather)


if __name__ == "__main__":
    main()
