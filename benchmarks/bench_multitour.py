"""Extension E1: multi-tour perpetual operation.

Drives 10 consecutive daylight tours with battery evolution and checks
the energy-harvesting premise end-to-end: the network keeps delivering
data every tour (perpetual operation), energy books balance, and
batteries never overflow their capacity or go negative.
"""

from __future__ import annotations

import numpy as np
import pytest

from benchmarks.conftest import save_report
from repro.sim.algorithms import get_algorithm
from repro.sim.scenario import ScenarioConfig
from repro.sim.simulator import simulate_tours

TOURS = 10


def test_multitour_perpetual_operation(benchmark):
    def run():
        scenario = ScenarioConfig(num_sensors=200).build(seed=17)
        result = simulate_tours(
            scenario, get_algorithm("Online_Appro"), num_tours=TOURS, rest_time=300.0
        )
        return scenario, result

    scenario, result = benchmark.pedantic(run, rounds=1, iterations=1)

    assert result.num_tours == TOURS
    bits = result.bits_per_tour()
    lines = [
        f"tour {t.tour_index}: {t.collected_megabits:.2f} Mb, "
        f"spent {t.total_energy_spent:.1f} J, harvested {t.total_energy_harvested:.1f} J"
        for t in result.tours
    ]
    save_report("multitour", "\n".join(lines) + "\n")

    # Perpetual operation: every daylight tour collects data.
    assert np.all(bits > 0)
    # Batteries respect their physical bounds after 10 tours.
    charges = scenario.network.charges()
    assert np.all(charges >= -1e-9)
    assert np.all(charges <= scenario.config.battery_capacity + 1e-9)
    # Energy conservation at network level: final = initial - spent +
    # harvested - spilled.
    initial = result.tours[0].budgets.sum()
    spent = sum(t.total_energy_spent for t in result.tours)
    harvested = sum(t.total_energy_harvested for t in result.tours)
    spilled = sum(float(t.energy_spilled.sum()) for t in result.tours)
    assert charges.sum() == pytest.approx(
        initial - spent + harvested - spilled, rel=1e-6
    )
