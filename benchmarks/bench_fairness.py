"""Ablation A6: throughput vs per-sensor fairness across algorithms.

The paper maximises total data; its related work (Liu et al.'s
lexicographic maximin) optimises fairness instead.  This bench measures
where each of our algorithms sits on that trade-off: Jain's index over
per-sensor collected data (restricted to reachable sensors) against
total throughput.

Expected: round-robin is the fairest and cheapest in throughput; the
optimising algorithms cluster at high throughput with moderate
fairness; random sits in between on fairness but far below on
throughput.
"""

from __future__ import annotations

import numpy as np
import pytest

from benchmarks.conftest import save_report
from repro.sim.algorithms import get_algorithm
from repro.sim.metrics import jain_fairness
from repro.sim.scenario import ScenarioConfig
from repro.sim.simulator import run_tour

ALGOS = [
    "Offline_MaxMatch",
    "Offline_Appro",
    "Online_Appro",
    "Baseline[greedy_profit]",
    "Baseline[random]",
    "Baseline[round_robin]",
]
REPEATS = 3


def test_fairness_tradeoff(benchmark):
    def run():
        rows = {name: {"mb": [], "jain": []} for name in ALGOS}
        for seed in range(REPEATS):
            scenario = ScenarioConfig(num_sensors=200, fixed_power=0.3).build(seed=seed)
            inst = scenario.instance()
            reachable = np.array(
                [inst.window_of(i) is not None for i in range(inst.num_sensors)]
            )
            for name in ALGOS:
                result = run_tour(scenario, get_algorithm(name), mutate=False)
                per_sensor = result.allocation.per_sensor_bits(inst)[reachable]
                rows[name]["mb"].append(result.collected_megabits)
                rows[name]["jain"].append(jain_fairness(per_sensor))
        return {
            name: (float(np.mean(v["mb"])), float(np.mean(v["jain"])))
            for name, v in rows.items()
        }

    stats = benchmark.pedantic(run, rounds=1, iterations=1)
    lines = [
        f"{name:<26} {mb:7.2f} Mb   Jain {jain:.3f}" for name, (mb, jain) in stats.items()
    ]
    save_report("fairness_tradeoff", "\n".join(lines) + "\n")

    # Round-robin is the fairest of all policies measured.
    rr_jain = stats["Baseline[round_robin]"][1]
    for name, (_, jain) in stats.items():
        if name != "Baseline[round_robin]":
            assert rr_jain >= jain - 0.05, (name, jain, rr_jain)
    # And the optimising algorithms dominate it on throughput.
    assert stats["Offline_MaxMatch"][0] > 1.2 * stats["Baseline[round_robin]"][0]
