"""Ablation A4: the probe-interval length Γ.

The paper fixes ``Γ = ⌊R/(r_s·τ)⌋`` — the largest interval such that a
sensor heard at the probe stays reachable throughout.  Γ is really a
protocol knob: *smaller* intervals mean more probes (overhead) but less
boundary loss — a sensor whose window starts mid-interval waits less
for the next probe; *larger* intervals would break the reachability
premise.  This ablation sweeps Γ from ``Γ*/8`` to ``Γ*`` and records
throughput and message counts, quantifying the trade-off the paper's
choice sits on.
"""

from __future__ import annotations

import numpy as np
import pytest

from benchmarks.conftest import save_report
from repro.online.online_appro import online_appro
from repro.sim.scenario import ScenarioConfig

REPEATS = 3


def test_gamma_ablation(benchmark):
    def run():
        rows = {}
        scenarios = [
            ScenarioConfig(num_sensors=300).build(seed=seed) for seed in range(REPEATS)
        ]
        gamma_star = scenarios[0].gamma
        for divisor in (8, 4, 2, 1):
            gamma = max(1, gamma_star // divisor)
            bits, msgs = [], []
            for scenario in scenarios:
                inst = scenario.instance()
                result = online_appro(inst, gamma)
                bits.append(result.collected_bits)
                msgs.append(result.messages.total_messages)
            rows[gamma] = (float(np.mean(bits)) / 1e6, float(np.mean(msgs)))
        return gamma_star, rows

    gamma_star, rows = benchmark.pedantic(run, rounds=1, iterations=1)

    lines = [
        f"gamma={g:>3} ({'paper' if g == gamma_star else f'G*/{gamma_star // g}'}): "
        f"{mb:7.2f} Mb, {msg:7.0f} messages"
        for g, (mb, msg) in rows.items()
    ]
    save_report("ablation_gamma", "\n".join(lines) + "\n")

    gammas = sorted(rows)
    # Smaller gamma -> more probe intervals -> strictly more messages.
    msg_series = [rows[g][1] for g in gammas]
    assert all(a >= b for a, b in zip(msg_series, msg_series[1:])), msg_series
    # Message overhead shrinks by at least 2x from G*/8 to G*.
    assert rows[gammas[0]][1] >= 2.0 * rows[gammas[-1]][1]
    # Throughput stays within a modest band across the sweep: boundary
    # loss and granularity trade against each other.
    mbs = [rows[g][0] for g in gammas]
    assert max(mbs) / min(mbs) < 1.25, mbs
