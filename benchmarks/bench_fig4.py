"""Figure 4 benchmark: the slot-duration effect on the online algorithms.

Regenerates the paper's Figure 4 series (throughput vs n, one curve per
τ ∈ {1, 2, 4, 8, 16} s, r_s = 5 m/s; panel (a) Online_MaxMatch at fixed
300 mW, panel (b) Online_Appro multi-rate) and asserts:

* throughput decreases from τ = 1 to τ = 16 at every n (mean over
  topologies), sharply at the tail (paper: ≥ 50 %);
* the τ = 1 vs τ = 2 gap is small (paper: ~0.5–1 %).
"""

from __future__ import annotations

import numpy as np

from benchmarks.conftest import save_report
from repro.experiments import fig4
from repro.experiments.sweep import aggregate


def _series(stats, algo, tau, n):
    key = (f"(a) Online_MaxMatch, tau={tau:g} s" if algo == "Online_MaxMatch"
           else f"(b) Online_Appro, tau={tau:g} s")
    return stats[(key, n)][algo][0]


def test_fig4_reproduction(benchmark, scale):
    result = benchmark.pedantic(
        lambda: fig4.run(repeats=scale["repeats"], sizes=scale["sizes"]),
        rounds=1,
        iterations=1,
    )
    report = fig4.report(result)
    path = save_report("fig4", report)
    print(report)
    print(f"[saved to {path}]")

    stats = aggregate(result, ["panel", "n"])
    sizes = result.label_values("n")
    taus = (1.0, 2.0, 4.0, 8.0, 16.0)

    for algo in ("Online_MaxMatch", "Online_Appro"):
        for n in sizes:
            t1 = _series(stats, algo, 1.0, n)
            t2 = _series(stats, algo, 2.0, n)
            t16 = _series(stats, algo, 16.0, n)
            # Throughput falls from tau=1 to tau=16 at every n.
            assert t1 > t16, (algo, n, t1, t16)
            # tau=1 and tau=2 nearly tie (paper: 0.5-1%).
            assert abs(t1 - t2) <= 0.15 * t1, (algo, n, t1, t2)
            # Near-monotone trend across the whole tau range.
            series = [_series(stats, algo, tau, n) for tau in taus]
            assert all(
                a >= b - 0.1 * series[0] for a, b in zip(series, series[1:])
            ), (algo, n, series)
        # Sharp tail drop somewhere in the size range (paper: tau=1 at
        # least +50% over tau=16; the relative gap is largest where
        # contention cannot mask energy loss).
        best_ratio = max(
            _series(stats, algo, 1.0, n) / _series(stats, algo, 16.0, n)
            for n in sizes
        )
        assert best_ratio >= 1.3, (algo, best_ratio)
        # The absolute tau-gap widens with network size (paper: "the
        # performance gap grows bigger with the growth of network size").
        gap_small = _series(stats, algo, 1.0, sizes[0]) - _series(stats, algo, 16.0, sizes[0])
        gap_big = _series(stats, algo, 1.0, sizes[-1]) - _series(stats, algo, 16.0, sizes[-1])
        assert gap_big > 0 and gap_small > 0
