"""Ablation A1: the knapsack solver inside ``Offline_Appro``.

The paper's guarantee is ``1/(1+β)`` for a ``β``-approximate knapsack:
exact ⇒ 1/2, FPTAS(ε) ⇒ 1/(2+ε), greedy ⇒ 1/3.  This ablation measures
what the solver choice costs *in practice* on paper-scale instances:
throughput and scheduler runtime per method.

Expected outcome (recorded in EXPERIMENTS.md): the exact few-weights
solver and the FPTAS deliver near-identical throughput — the radio
table's 4 weight classes make exact solving cheap — while greedy gives
up only a little, so the paper's FPTAS-based ratio is pessimistic on
realistic instances.
"""

from __future__ import annotations

import numpy as np
import pytest

from benchmarks.conftest import save_report
from repro.core.offline_appro import offline_appro
from repro.sim.scenario import ScenarioConfig

METHODS = [
    ("few_weights", {}),
    ("greedy", {}),
    ("fptas", {"epsilon": 0.1}),
    ("fptas", {"epsilon": 0.5}),
]

N = 300
REPEATS = 3


@pytest.fixture(scope="module")
def instances():
    out = []
    for seed in range(REPEATS):
        scenario = ScenarioConfig(num_sensors=N).build(seed=seed)
        out.append(scenario.instance())
    return out


@pytest.mark.parametrize("method,kwargs", METHODS, ids=lambda m: str(m))
def test_knapsack_method_ablation(benchmark, instances, method, kwargs):
    def run_all():
        return [
            offline_appro(inst, knapsack_method=method, **kwargs).collected_bits(inst)
            for inst in instances
        ]

    bits = benchmark.pedantic(run_all, rounds=1, iterations=1)
    mean_mb = float(np.mean(bits)) / 1e6
    label = method + (f"(eps={kwargs['epsilon']})" if kwargs else "")
    save_report(
        f"ablation_knapsack_{label}",
        f"Offline_Appro knapsack={label}: mean {mean_mb:.2f} Mb over {REPEATS} topologies (n={N})\n",
    )
    assert mean_mb > 0


def test_exact_beats_greedy_on_average(instances):
    exact = np.mean(
        [offline_appro(i, knapsack_method="few_weights").collected_bits(i) for i in instances]
    )
    greedy = np.mean(
        [offline_appro(i, knapsack_method="greedy").collected_bits(i) for i in instances]
    )
    # Greedy can tie but never wins by more than noise; exact must hold
    # at least ~97% ... the other way: greedy <= exact * 1.02.
    assert greedy <= exact * 1.02
