"""Benchmark harness regenerating every figure of the paper's evaluation."""
