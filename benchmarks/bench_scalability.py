"""Scalability benchmark (Theorems 2–4): scheduler runtime vs n.

The paper claims ``O(n²)`` for ``Offline_Appro`` (Theorem 2), ``O(n)``
time and messages for the online framework (Theorem 3), and
``O(n^1.5)`` for ``Online_MaxMatch`` (Theorem 4), all with Γ constant.
This benchmark times each algorithm at increasing n on fixed geometry
and checks the *message* bound exactly (time bounds are reported, not
asserted — wall-clock constants vary by machine).
"""

from __future__ import annotations

import pytest

from repro.sim.algorithms import get_algorithm
from repro.sim.scenario import ScenarioConfig
from repro.sim.simulator import run_tour

SIZES = [100, 300, 600]
ALGOS = ["Offline_Appro", "Online_Appro", "Offline_MaxMatch", "Online_MaxMatch"]


def _scenario(name: str, n: int):
    fixed = 0.3 if "MaxMatch" in name else None
    return ScenarioConfig(num_sensors=n, fixed_power=fixed).build(seed=99)


@pytest.mark.parametrize("n", SIZES)
@pytest.mark.parametrize("algo_name", ALGOS)
def test_scheduler_runtime(benchmark, algo_name, n):
    scenario = _scenario(algo_name, n)
    instance = scenario.instance()
    algorithm = get_algorithm(algo_name)
    gamma = scenario.gamma

    allocation, messages = benchmark.pedantic(
        lambda: algorithm.run(instance, gamma), rounds=1, iterations=2
    )
    allocation.check_feasible(instance)
    if messages is not None:
        # Theorem 3/4: O(n) messages — at most 2 acks per sensor plus 3
        # broadcasts per interval (interval count is n-independent).
        intervals = -(-instance.num_slots // gamma)
        assert messages.total_messages <= 2 * n + 3 * intervals
