"""Ablation A2: b-matching engine equivalence and speed.

``Offline_MaxMatch`` can solve its matching with our from-scratch
min-cost flow, scipy's Jonker–Volgenant assignment on expanded copies,
or the HiGHS LP over the (totally unimodular) b-matching polytope.
All three are exact; this benchmark times them on a paper-scale
instance and asserts they return the same optimum.
"""

from __future__ import annotations

import pytest

from repro.core.offline_maxmatch import build_matching_edges, offline_maxmatch
from repro.sim.scenario import ScenarioConfig

ENGINES = ["flow", "lsa", "lp"]


@pytest.fixture(scope="module")
def instance():
    # n=200 keeps the dense LSA expansion affordable while staying
    # representative (edges ~ 200 * 80).
    scenario = ScenarioConfig(num_sensors=200, fixed_power=0.3).build(seed=5)
    return scenario.instance()


@pytest.fixture(scope="module")
def reference_bits(instance):
    return offline_maxmatch(instance, engine="lp").collected_bits(instance)


@pytest.mark.parametrize("engine", ENGINES)
def test_matching_engine(benchmark, instance, reference_bits, engine):
    allocation = benchmark.pedantic(
        lambda: offline_maxmatch(instance, engine=engine), rounds=1, iterations=1
    )
    assert allocation.collected_bits(instance) == pytest.approx(reference_bits)


def test_auction_engine_within_epsilon(benchmark, instance, reference_bits):
    """The ε-optimal auction engine on a per-interval-sized problem
    (tour-scale dense matrices exceed its memory guard by design)."""
    from repro.core.auction import auction_b_matching
    from repro.core.offline_maxmatch import build_matching_edges
    from repro.utils.intervals import SlotInterval

    sub, _ = instance.restrict(SlotInterval(0, 39))
    edges, caps = build_matching_edges(sub, fixed_power=0.3)
    result = benchmark.pedantic(
        lambda: auction_b_matching(edges, caps, sub.num_slots), rounds=1, iterations=1
    )
    from repro.core.matching import max_weight_b_matching

    exact = max_weight_b_matching(edges, caps, sub.num_slots, engine="flow")
    max_w = max(w for _, _, w in edges)
    assert result.weight >= exact.weight - max_w * 1e-3
    assert result.weight <= exact.weight + 1e-9


def test_edge_count_scale(instance):
    edges, caps = build_matching_edges(instance)
    assert len(edges) > 1000  # paper-scale graph, not a toy
    assert caps.max() > 0
