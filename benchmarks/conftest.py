"""Benchmark configuration.

Every figure benchmark runs the corresponding experiment module at a
scale controlled by ``REPRO_BENCH_SCALE``:

* ``quick`` (default) — 3 topologies per point, n ∈ {100, 300, 600};
  minutes on a laptop, enough for every qualitative shape check.
* ``full`` — the paper's methodology verbatim: 50 topologies per point,
  n ∈ {100..600}.

Besides timing, each benchmark *asserts the paper's qualitative claims*
and writes the regenerated series tables to ``benchmarks/results/`` so
the reproduction is inspectable after ``pytest benchmarks/
--benchmark-only``.

Every benchmark additionally runs under a fresh recording
:class:`repro.obs.MetricsRegistry` (see ``_metrics_registry`` below);
the registry snapshot — solver counters and phase-timer histograms — is
attached to ``benchmark.extra_info["metrics"]`` so it lands in
``--benchmark-json`` output next to the timing statistics.
"""

from __future__ import annotations

import os
from pathlib import Path

import pytest

from repro.obs import MetricsRegistry, use_registry

RESULTS_DIR = Path(__file__).parent / "results"


@pytest.fixture(autouse=True)
def _metrics_registry(request):
    """Record each benchmark under a fresh metrics registry.

    The snapshot (solver counters, phase-timer histograms) is attached
    to ``benchmark.extra_info["metrics"]`` for ``--benchmark-json``
    consumers.  Tests that don't use the ``benchmark`` fixture still get
    a scoped registry, so runs never leak metrics into each other.
    """
    registry = MetricsRegistry()
    benchmark = (
        request.getfixturevalue("benchmark")
        if "benchmark" in request.fixturenames
        else None
    )
    with use_registry(registry):
        yield registry
    if benchmark is not None:
        benchmark.extra_info["metrics"] = registry.snapshot()


def bench_scale() -> dict:
    """Sweep scale derived from REPRO_BENCH_SCALE."""
    mode = os.environ.get("REPRO_BENCH_SCALE", "quick")
    if mode == "full":
        return {
            "repeats": 50,
            "sizes": (100, 200, 300, 400, 500, 600),
            "mode": mode,
        }
    return {"repeats": 3, "sizes": (100, 300, 600), "mode": "quick"}


def save_report(name: str, text: str) -> Path:
    """Persist a regenerated figure table under benchmarks/results/."""
    RESULTS_DIR.mkdir(exist_ok=True)
    path = RESULTS_DIR / f"{name}.txt"
    path.write_text(text)
    return path


@pytest.fixture(scope="session")
def scale() -> dict:
    return bench_scale()
