"""Benchmark configuration.

Every figure benchmark runs the corresponding experiment module at a
scale controlled by ``REPRO_BENCH_SCALE``:

* ``quick`` (default) — 3 topologies per point, n ∈ {100, 300, 600};
  minutes on a laptop, enough for every qualitative shape check.
* ``full`` — the paper's methodology verbatim: 50 topologies per point,
  n ∈ {100..600}.

Besides timing, each benchmark *asserts the paper's qualitative claims*
and writes the regenerated series tables to ``benchmarks/results/`` so
the reproduction is inspectable after ``pytest benchmarks/
--benchmark-only``.
"""

from __future__ import annotations

import os
from pathlib import Path

import pytest

RESULTS_DIR = Path(__file__).parent / "results"


def bench_scale() -> dict:
    """Sweep scale derived from REPRO_BENCH_SCALE."""
    mode = os.environ.get("REPRO_BENCH_SCALE", "quick")
    if mode == "full":
        return {
            "repeats": 50,
            "sizes": (100, 200, 300, 400, 500, 600),
            "mode": mode,
        }
    return {"repeats": 3, "sizes": (100, 300, 600), "mode": "quick"}


def save_report(name: str, text: str) -> Path:
    """Persist a regenerated figure table under benchmarks/results/."""
    RESULTS_DIR.mkdir(exist_ok=True)
    path = RESULTS_DIR / f"{name}.txt"
    path.write_text(text)
    return path


@pytest.fixture(scope="session")
def scale() -> dict:
    return bench_scale()
