"""Ablation A3: harvesting regime and initial-energy sensitivity.

The paper fixes one solar profile; this ablation quantifies how the
collected throughput responds to (a) weather (sunny / cloudy / none)
and (b) the initial-energy calibration knob that the paper leaves
unspecified — evidence for the substitution note in DESIGN.md.
"""

from __future__ import annotations

import numpy as np
import pytest

from benchmarks.conftest import save_report
from repro.sim.algorithms import get_algorithm
from repro.sim.scenario import ScenarioConfig
from repro.sim.simulator import run_tour

N = 300
REPEATS = 3


def _mean_throughput(config) -> float:
    vals = []
    for seed in range(REPEATS):
        scenario = config.build(seed=seed)
        vals.append(
            run_tour(scenario, get_algorithm("Offline_Appro"), mutate=False).collected_megabits
        )
    return float(np.mean(vals))


def test_weather_ablation(benchmark):
    def run():
        return {
            weather: _mean_throughput(ScenarioConfig(num_sensors=N, weather=weather))
            for weather in ("sunny", "cloudy")
        }

    results = benchmark.pedantic(run, rounds=1, iterations=1)
    lines = [f"weather={k}: {v:.2f} Mb" for k, v in results.items()]
    save_report("ablation_weather", "\n".join(lines) + "\n")
    # Cloudy days charge batteries less -> less collectable data.
    assert results["cloudy"] < results["sunny"]


def test_initial_energy_ablation(benchmark):
    def run():
        out = {}
        for hours in ((0.0, 0.25), (0.0, 1.0), (0.5, 4.0), (2.0, 12.0)):
            config = ScenarioConfig(num_sensors=N, accumulation_hours=hours)
            out[hours] = _mean_throughput(config)
        return out

    results = benchmark.pedantic(run, rounds=1, iterations=1)
    lines = [f"accumulation U{k} h: {v:.2f} Mb" for k, v in results.items()]
    save_report("ablation_initial_energy", "\n".join(lines) + "\n")
    values = list(results.values())
    # More stored energy can only help (monotone response), and the
    # response saturates once budgets stop binding.
    assert all(a <= b * 1.02 for a, b in zip(values, values[1:])), values
    assert values[-1] / values[0] > 1.2  # the knob matters
