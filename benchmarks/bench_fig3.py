"""Figure 3 benchmark: the fixed-power special case, four algorithms.

Regenerates the paper's Figure 3 series (throughput vs n for
r_s ∈ {5, 10, 30} m/s at fixed 300 mW) and asserts:

* ``Offline_MaxMatch`` (exact) dominates every other algorithm;
* online variants trail their offline counterparts only slightly;
* the speed effect: 5 m/s collects ≈ 2× of 10 m/s (paper: +101 %) and
  several times 30 m/s (paper: +540 %).
"""

from __future__ import annotations

import numpy as np

from benchmarks.conftest import save_report
from repro.experiments import fig3
from repro.experiments.sweep import aggregate


def test_fig3_reproduction(benchmark, scale):
    result = benchmark.pedantic(
        lambda: fig3.run(repeats=scale["repeats"], sizes=scale["sizes"]),
        rounds=1,
        iterations=1,
    )
    report = fig3.report(result)
    path = save_report("fig3", report)
    print(report)
    print(f"[saved to {path}]")

    stats = aggregate(result, ["panel", "n"])
    panels = result.label_values("panel")
    sizes = result.label_values("n")

    for panel in panels:
        for n in sizes:
            cell = stats[(panel, n)]
            top = cell["Offline_MaxMatch"][0]
            # Exact algorithm on top of all four.
            for algo, (mean, _, _) in cell.items():
                assert mean <= top + 1e-6, (panel, n, algo)
            # Offline >= its online counterpart.
            assert cell["Offline_MaxMatch"][0] >= cell["Online_MaxMatch"][0] - 1e-6
            assert cell["Offline_Appro"][0] >= cell["Online_Appro"][0] - 1e-6
            # Online variants stay close (paper: marginal gap).
            assert cell["Online_MaxMatch"][0] >= 0.85 * top

    # Speed effect at the largest n: ratios in the paper's ballpark.
    n_big = sizes[-1]
    v5 = stats[(panels[0], n_big)]["Offline_MaxMatch"][0]
    v10 = stats[(panels[1], n_big)]["Offline_MaxMatch"][0]
    v30 = stats[(panels[2], n_big)]["Offline_MaxMatch"][0]
    assert 1.5 <= v5 / v10 <= 3.0, v5 / v10  # paper: ~2.01x
    assert 3.5 <= v5 / v30 <= 10.0, v5 / v30  # paper: ~6.4x
