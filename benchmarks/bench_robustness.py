"""Ablation A5: robustness to control-channel loss (failure injection).

The paper assumes reliable Probe/Ack/Schedule traffic.  Real 802.15.4
control channels lose packets; this bench sweeps an i.i.d. probe-loss
rate and measures the online algorithm's degradation.  Measured shape
(recorded in EXPERIMENTS.md): roughly proportional at low loss — a
missed probe forfeits a whole interval — and *sub*-proportional at high
loss, where Lemma 1's second probe and the competitors that fill
vacated slots provide redundancy (90 % loss still collects ~12 %).
"""

from __future__ import annotations

import numpy as np
import pytest

from benchmarks.conftest import save_report
from repro.online.framework import run_online
from repro.online.online_appro import GapIntervalScheduler
from repro.sim.scenario import ScenarioConfig

LOSS_RATES = (0.0, 0.1, 0.3, 0.5, 0.7, 0.9)
REPEATS = 3


def test_probe_loss_robustness(benchmark):
    def run():
        rows = {}
        scenarios = [
            ScenarioConfig(num_sensors=200).build(seed=seed) for seed in range(REPEATS)
        ]
        instances = [s.instance() for s in scenarios]
        gamma = scenarios[0].gamma
        for loss in LOSS_RATES:
            vals = []
            for k, inst in enumerate(instances):
                result = run_online(
                    inst, gamma, GapIntervalScheduler(), loss_rate=loss, loss_seed=k
                )
                result.allocation.check_feasible(inst)
                vals.append(result.collected_bits)
            rows[loss] = float(np.mean(vals)) / 1e6
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    base = rows[0.0]
    lines = [
        f"loss={loss:.1f}: {mb:7.2f} Mb ({mb / base:6.1%} of lossless)"
        for loss, mb in rows.items()
    ]
    save_report("robustness_probe_loss", "\n".join(lines) + "\n")

    values = [rows[l] for l in LOSS_RATES]
    # Monotone (graceful) degradation — no cliff.
    assert all(a >= b - 0.02 * base for a, b in zip(values, values[1:])), values
    # Roughly proportional in the low-loss regime.
    assert 0.60 * base <= rows[0.3] <= 0.95 * base
    # Sub-proportional at heavy loss: redundancy keeps some data flowing.
    assert 0.05 * base <= rows[0.9] <= 0.40 * base
