"""Figure 2 benchmark: Offline_Appro vs Online_Appro.

Regenerates the paper's Figure 2 series (network throughput vs n for
(r_s, τ) ∈ {(5,1), (10,2), (30,4)}) and asserts its qualitative claims:

* the offline algorithm dominates the online one at every point;
* the online algorithm stays within a few percent (paper: ≥ 93 %);
* throughput grows with n and falls as the sink speeds up.
"""

from __future__ import annotations

import numpy as np

from benchmarks.conftest import save_report
from repro.experiments import fig2
from repro.experiments.sweep import aggregate


def _mean(stats, panel, n, algo):
    return stats[(panel, n)][algo][0]


def test_fig2_reproduction(benchmark, scale):
    result = benchmark.pedantic(
        lambda: fig2.run(repeats=scale["repeats"], sizes=scale["sizes"]),
        rounds=1,
        iterations=1,
    )
    report = fig2.report(result)
    path = save_report("fig2", report)
    print(report)
    print(f"[saved to {path}]")

    stats = aggregate(result, ["panel", "n"])
    panels = result.label_values("panel")
    sizes = result.label_values("n")

    # Offline dominates online at every point (means over topologies).
    for panel in panels:
        for n in sizes:
            off = _mean(stats, panel, n, "Offline_Appro")
            on = _mean(stats, panel, n, "Online_Appro")
            assert off >= on - 1e-6, (panel, n)
            # Paper: online within a few percent of offline.
            assert on >= 0.85 * off, (panel, n, on / off)

    # Throughput grows with n within each panel.
    for panel in panels:
        series = [_mean(stats, panel, n, "Offline_Appro") for n in sizes]
        assert series[-1] > series[0], (panel, series)

    # Faster sink (+ longer tau) => lower throughput at every n.
    for n in sizes:
        per_panel = [_mean(stats, panel, n, "Offline_Appro") for panel in panels]
        assert per_panel[0] > per_panel[1] > per_panel[2], (n, per_panel)
