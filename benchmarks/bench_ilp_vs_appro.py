"""Reproduces the paper's scalability argument: ILP vs Offline_Appro.

Section I.B: "traditional ILP methods take too much time and suffer
poor scalability … the solution delivered may be no longer applicable
due to the quick changes of energy profiles at sensors."  This bench
puts numbers on that claim: the exact HiGHS ILP against the paper's
combinatorial algorithm at growing n, with the quality gap the
combinatorial algorithm gives up in exchange.
"""

from __future__ import annotations

import time

import numpy as np
import pytest

from benchmarks.conftest import save_report
from repro.core.ilp import solve_dcmp_ilp
from repro.core.offline_appro import offline_appro
from repro.sim.scenario import ScenarioConfig

SIZES = [100, 200, 300]


@pytest.mark.parametrize("n", SIZES)
def test_ilp_vs_appro(benchmark, n):
    scenario = ScenarioConfig(num_sensors=n).build(seed=31)
    instance = scenario.instance()

    t0 = time.perf_counter()
    appro = offline_appro(instance)
    appro_time = time.perf_counter() - t0
    appro_bits = appro.collected_bits(instance)

    sol = benchmark.pedantic(
        lambda: solve_dcmp_ilp(instance, time_limit=120.0), rounds=1, iterations=1
    )

    quality = appro_bits / sol.objective_bits if sol.objective_bits else 1.0
    save_report(
        f"ilp_vs_appro_n{n}",
        (
            f"n={n}: ILP {'optimal' if sol.optimal else 'timeout-incumbent'} "
            f"{sol.objective_bits / 1e6:.2f} Mb; Offline_Appro "
            f"{appro_bits / 1e6:.2f} Mb in {appro_time * 1e3:.0f} ms "
            f"({quality:.1%} of exact)\n"
        ),
    )
    # The approximation guarantee (and in practice much better).
    assert appro_bits >= sol.objective_bits / 2.0 - 1e-6
    # The combinatorial algorithm holds near-exact quality here.
    if sol.optimal:
        assert quality >= 0.9
